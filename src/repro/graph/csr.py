"""Compressed-sparse-row graph storage.

This is the in-memory format NextDoor stores on the GPU: a vertex offset
array (``indptr``), a neighbor array (``indices``), and an optional edge
weight array.  All sampling engines operate directly on these arrays so
that the access patterns the GPU model charges for are the access
patterns the code actually performs.

Rows (adjacency lists) are kept sorted by neighbor id, which gives
O(log d) ``has_edge`` — the primitive node2vec's rejection sampling needs
to test whether a candidate is a neighbor of the previous transit.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

__all__ = ["CSRGraph"]


class CSRGraph:
    """A directed graph in CSR form with optional float edge weights.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``num_vertices + 1``; row ``v`` of the
        adjacency structure is ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        ``int64`` array of neighbor ids, each row sorted ascending.
    weights:
        Optional ``float64`` array aligned with ``indices``.  When
        present, weighted samplers (e.g. DeepWalk's biased walk) use it;
        ``weight_prefix`` exposes the per-row cumulative sums the
        paper's ``Vertex`` utility class provides.
    name:
        Human-readable name used in benchmark reports.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: Optional[np.ndarray] = None,
        name: str = "graph",
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indptr.size < 1:
            raise ValueError("indptr must be a 1-D array of length >= 1")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise ValueError(
                "indptr must start at 0 and end at len(indices) "
                f"(got {indptr[0]}..{indptr[-1]} for {indices.size} edges)"
            )
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        num_vertices = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= num_vertices):
            raise ValueError("indices contains out-of-range vertex ids")

        if weights is not None:
            weights = np.ascontiguousarray(weights, dtype=np.float64)
            if weights.shape != indices.shape:
                raise ValueError("weights must align with indices")
            if indices.size and weights.min() < 0:
                raise ValueError("edge weights must be non-negative")

        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.name = name
        self._sort_rows()
        self._weight_prefix: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Iterable[Tuple[int, int]],
        weights: Optional[Iterable[float]] = None,
        undirected: bool = False,
        name: str = "graph",
    ) -> "CSRGraph":
        """Build a CSR graph from an edge list.

        With ``undirected=True`` each edge is inserted in both
        directions (the SNAP social graphs in Table 3 are undirected).
        """
        edge_arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges,
                              dtype=np.int64)
        if edge_arr.size == 0:
            edge_arr = edge_arr.reshape(0, 2)
        if edge_arr.ndim != 2 or edge_arr.shape[1] != 2:
            raise ValueError("edges must be an iterable of (src, dst) pairs")
        w_arr = None
        if weights is not None:
            w_arr = np.asarray(list(weights) if not isinstance(weights, np.ndarray) else weights,
                               dtype=np.float64)
            if w_arr.shape != (edge_arr.shape[0],):
                raise ValueError("weights must align with edges")
        if undirected and edge_arr.shape[0]:
            edge_arr = np.concatenate([edge_arr, edge_arr[:, ::-1]], axis=0)
            if w_arr is not None:
                w_arr = np.concatenate([w_arr, w_arr])

        src = edge_arr[:, 0]
        dst = edge_arr[:, 1]
        if edge_arr.shape[0] and (src.min() < 0 or dst.min() < 0
                                  or src.max() >= num_vertices
                                  or dst.max() >= num_vertices):
            raise ValueError("edge endpoints out of range")

        order = np.argsort(src, kind="stable")
        src = src[order]
        dst = dst[order]
        if w_arr is not None:
            w_arr = w_arr[order]
        counts = np.bincount(src, minlength=num_vertices)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, dst, weights=w_arr, name=name)

    def with_random_weights(self, low: float = 1.0, high: float = 5.0,
                            seed: int = 0) -> "CSRGraph":
        """Return a weighted copy with weights uniform in ``[low, high)``.

        This is the paper's procedure for producing weighted variants of
        the SNAP graphs ("assigning weights to each edge randomly from
        [1, 5)", Section 8).
        """
        rng = np.random.default_rng(seed)
        weights = rng.uniform(low, high, size=self.indices.size)
        return CSRGraph(self.indptr.copy(), self.indices.copy(),
                        weights=weights, name=self.name)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        return int(self.indices.size)

    @property
    def is_weighted(self) -> bool:
        return self.weights is not None

    def degree(self, v: int) -> int:
        """Out-degree of vertex ``v``."""
        return int(self.indptr[v + 1] - self.indptr[v])

    @property
    def degrees_array(self) -> np.ndarray:
        """Cached vector of all out-degrees (int64, read-only).

        Samplers gather from this every step; computing ``np.diff``
        of ``indptr`` per step was one of the hot-path costs the
        engines repeated per step per engine.
        """
        cached = getattr(self, "_degrees_cache", None)
        if cached is None:
            cached = np.diff(self.indptr)
            cached.setflags(write=False)
            self._degrees_cache = cached
        return cached

    def degrees(self) -> np.ndarray:
        """Vector of all out-degrees (the cached read-only array)."""
        return self.degrees_array

    @property
    def avg_degree(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor ids of ``v`` (a view, do not mutate)."""
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def edge_weights(self, v: int) -> np.ndarray:
        """Weights of the edges leaving ``v`` (aligned with neighbors)."""
        if self.weights is None:
            raise ValueError("graph is unweighted")
        return self.weights[self.indptr[v]:self.indptr[v + 1]]

    def max_edge_weight(self, v: int) -> float:
        """Maximum weight of the edges leaving ``v``.

        Mirrors the ``Vertex.maxEdgeWeight`` utility of the paper's API
        (used by node2vec's rejection-sampling envelope).
        """
        w = self.edge_weights(v)
        return float(w.max()) if w.size else 0.0

    def has_edge(self, u: int, v: int) -> bool:
        """True iff the directed edge ``(u, v)`` exists (binary search)."""
        row = self.neighbors(u)
        pos = np.searchsorted(row, v)
        return bool(pos < row.size and row[pos] == v)

    def _edge_keys(self) -> np.ndarray:
        """Globally sorted ``src * n + dst`` keys for every edge.

        Rows are contiguous and sorted, so the composite key array is
        globally sorted; one vectorised ``searchsorted`` then answers
        arbitrary batches of edge-existence queries.  Cached lazily
        (8 bytes per edge).
        """
        if getattr(self, "_edge_key_cache", None) is None:
            row_of_edge = np.repeat(
                np.arange(self.num_vertices, dtype=np.int64),
                self.degrees_array)
            self._edge_key_cache = row_of_edge * self.num_vertices + self.indices
        return self._edge_key_cache

    #: Adjacency bitmaps above this size fall back to binary search
    #: (64 MiB packed = graphs up to ~23k vertices).
    _BITMAP_MAX_BYTES = 1 << 26

    def _edge_bitmap(self) -> Optional[np.ndarray]:
        """Packed V*V adjacency bitmap (1 bit per vertex pair), or
        ``None`` for graphs too large to afford one.

        Turns batched edge-existence probes into O(1) gathers instead
        of O(log E) binary searches — the GPU analogue is a bitmap in
        device memory answering warp-wide membership tests.  Built
        lazily, cached (V^2 / 8 bytes).
        """
        cached = getattr(self, "_edge_bitmap_cache", False)
        if cached is not False:
            return cached
        n = self.num_vertices
        nbits = n * n
        if nbits > self._BITMAP_MAX_BYTES * 8:
            self._edge_bitmap_cache = None
            return None
        bitmap = np.zeros((nbits + 7) // 8, dtype=np.uint8)
        keys = self._edge_keys()
        np.bitwise_or.at(bitmap, keys >> 3,
                         np.left_shift(1, keys & 7).astype(np.uint8))
        self._edge_bitmap_cache = bitmap
        return bitmap

    def has_edges(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`has_edge` for aligned arrays ``u``, ``v``.

        This is the hot primitive of node2vec and the importance
        samplers' layer-adjacency recording: for each candidate
        neighbor ``v[i]``, test membership in the adjacency list of
        ``u[i]``.  Served from the packed adjacency bitmap when the
        graph is small enough to hold one, else by binary search over
        the sorted composite edge keys.
        """
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if u.shape != v.shape:
            raise ValueError("u and v must have the same shape")
        if u.size == 0:
            return np.zeros(0, dtype=bool)
        query = u * np.int64(self.num_vertices) + v
        bitmap = self._edge_bitmap()
        if bitmap is not None:
            return (bitmap[query >> 3] >> (query & 7).astype(np.uint8)
                    ) & 1 > 0
        keys = self._edge_keys()
        pos = np.searchsorted(keys, query)
        found = np.zeros(u.shape, dtype=bool)
        in_range = pos < keys.size
        idx = np.nonzero(in_range)
        found[idx] = keys[pos[idx]] == query[idx]
        return found

    # ------------------------------------------------------------------
    # Weighted-sampling support
    # ------------------------------------------------------------------

    def weight_prefix(self) -> np.ndarray:
        """Global prefix-sum of edge weights, per CSR row.

        ``weight_prefix()[indptr[v]:indptr[v+1]]`` is the cumulative
        weight of the edges of ``v``; biased samplers binary-search it.
        Mirrors the paper's prefix-sum ``Vertex`` utility.  Computed
        lazily and cached.
        """
        if self.weights is None:
            raise ValueError("graph is unweighted")
        if self._weight_prefix is None:
            if self.weights.size == 0:
                self._weight_prefix = np.zeros(0, dtype=np.float64)
                return self._weight_prefix
            prefix = np.cumsum(self.weights)
            row_base = np.zeros_like(prefix)
            starts = self.indptr[:-1]
            valid = starts < self.indptr[1:]
            # Subtract the cumulative total before each row start so each
            # row's prefix restarts at its own first weight.
            base_per_row = np.where(starts > 0, prefix[starts - 1], 0.0)
            expanded = np.repeat(base_per_row[valid],
                                 np.diff(self.indptr)[valid])
            row_base[:] = expanded
            self._weight_prefix = prefix - row_base
        return self._weight_prefix

    def global_weight_cumsum(self) -> np.ndarray:
        """Monotone cumulative sum of all edge weights in CSR order.

        Weighted samplers binary-search this single array for every
        row at once: the slice ``[indptr[v], indptr[v+1])`` of the
        cumsum spans row ``v``'s weight mass.  Cached lazily.
        """
        if self.weights is None:
            raise ValueError("graph is unweighted")
        if getattr(self, "_global_cumsum_cache", None) is None:
            self._global_cumsum_cache = np.cumsum(self.weights)
        return self._global_cumsum_cache

    def weight_row_spans(self) -> "Tuple[np.ndarray, np.ndarray]":
        """Per-vertex ``(base, total)`` of :meth:`global_weight_cumsum`.

        ``base[v]`` is the cumsum value just before row ``v`` starts and
        ``total[v]`` the row's weight mass — precomputed with the exact
        arithmetic the weighted sampler would perform per step
        (``cumsum[start - 1]`` and ``cumsum[end - 1] - base``), so
        gathering from these caches yields bit-identical targets.
        """
        if self.weights is None:
            raise ValueError("graph is unweighted")
        if getattr(self, "_weight_row_spans_cache", None) is None:
            cumsum = self.global_weight_cumsum()
            starts = self.indptr[:-1]
            ends = self.indptr[1:]
            base = np.where(starts > 0, cumsum[starts - 1], 0.0)
            total = np.where(ends > starts, cumsum[ends - 1] - base, 0.0)
            self._weight_row_spans_cache = (base, total)
        return self._weight_row_spans_cache

    def row_max_weight(self) -> np.ndarray:
        """Maximum outgoing edge weight per vertex (cached).

        The vectorised form of :meth:`max_edge_weight` — node2vec's
        rejection envelope needs it for every transit of a step.
        """
        if self.weights is None:
            raise ValueError("graph is unweighted")
        if getattr(self, "_row_max_cache", None) is None:
            out = np.zeros(self.num_vertices, dtype=np.float64)
            starts = self.indptr[:-1]
            nonempty = np.nonzero(starts < self.indptr[1:])[0]
            if nonempty.size:
                out[nonempty] = np.maximum.reduceat(
                    self.weights, starts[nonempty])
            self._row_max_cache = out
        return self._row_max_cache

    def row_total_weight(self) -> np.ndarray:
        """Total edge weight per vertex (last entry of each row prefix)."""
        prefix = self.weight_prefix()
        totals = np.zeros(self.num_vertices, dtype=np.float64)
        ends = self.indptr[1:]
        nonempty = ends > self.indptr[:-1]
        totals[nonempty] = prefix[ends[nonempty] - 1]
        return totals

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def non_isolated_vertices(self) -> np.ndarray:
        """Vertices with at least one outgoing edge (cached).

        Automatic root selection draws from these: a walk rooted on an
        isolated vertex dies immediately, which the paper's SNAP graphs
        (no isolated vertices) never exhibit.
        """
        if getattr(self, "_non_isolated_cache", None) is None:
            self._non_isolated_cache = np.nonzero(np.diff(self.indptr) > 0)[0]
        return self._non_isolated_cache

    def subgraph(self, vertices: np.ndarray, name: Optional[str] = None) -> "CSRGraph":
        """Induced subgraph on ``vertices`` with relabeled ids 0..k-1."""
        vertices = np.unique(np.asarray(vertices, dtype=np.int64))
        relabel = -np.ones(self.num_vertices, dtype=np.int64)
        relabel[vertices] = np.arange(vertices.size)
        srcs = []
        dsts = []
        wts = [] if self.is_weighted else None
        for new_u, u in enumerate(vertices):
            row = self.neighbors(u)
            keep = relabel[row] >= 0
            dst = relabel[row[keep]]
            srcs.append(np.full(dst.size, new_u, dtype=np.int64))
            dsts.append(dst)
            if wts is not None:
                wts.append(self.edge_weights(u)[keep])
        src = np.concatenate(srcs) if srcs else np.zeros(0, dtype=np.int64)
        dst = np.concatenate(dsts) if dsts else np.zeros(0, dtype=np.int64)
        edges = np.stack([src, dst], axis=1) if src.size else np.zeros((0, 2), np.int64)
        weights = np.concatenate(wts) if wts else None
        return CSRGraph.from_edges(vertices.size, edges, weights=weights,
                                   name=name or f"{self.name}-sub")

    # ------------------------------------------------------------------
    # Shared-memory export (multicore runtime)
    # ------------------------------------------------------------------

    def to_shared(self):
        """Place this graph's arrays (and warm weighted-sampling
        caches) in ``multiprocessing.shared_memory`` and return a
        picklable handle; see :mod:`repro.runtime.shm`.  Idempotent —
        repeated calls reuse the same segments.  The owning process
        must eventually call :func:`repro.runtime.shm.release_graph`
        (also hooked on ``atexit``)."""
        from repro.runtime.shm import export_graph
        return export_graph(self)

    @classmethod
    def from_shared(cls, handle) -> "CSRGraph":
        """Map a :meth:`to_shared` handle read-only into a new graph
        without copying or re-validating the arrays."""
        from repro.runtime.shm import import_graph
        return import_graph(handle)

    def memory_bytes(self) -> int:
        """Bytes this graph occupies in device memory (CSR arrays)."""
        total = self.indptr.nbytes + self.indices.nbytes
        if self.weights is not None:
            total += self.weights.nbytes
        return total

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _sort_rows(self) -> None:
        """Sort each adjacency row ascending (idempotent).

        Weights, when present, are permuted together with their edges.
        """
        degrees = np.diff(self.indptr)
        if degrees.size == 0 or self.indices.size == 0:
            return
        row_of_edge = np.repeat(np.arange(self.num_vertices), degrees)
        order = np.lexsort((self.indices, row_of_edge))
        self.indices = self.indices[order]
        if self.weights is not None:
            self.weights = self.weights[order]

    def __repr__(self) -> str:
        kind = "weighted" if self.is_weighted else "unweighted"
        return (f"CSRGraph(name={self.name!r}, vertices={self.num_vertices}, "
                f"edges={self.num_edges}, {kind})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        same_structure = (np.array_equal(self.indptr, other.indptr)
                          and np.array_equal(self.indices, other.indices))
        if not same_structure:
            return False
        if (self.weights is None) != (other.weights is None):
            return False
        if self.weights is None:
            return True
        return np.allclose(self.weights, other.weights)

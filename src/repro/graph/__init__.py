"""Graph substrate: CSR storage, generators, I/O, and partitioning.

The paper evaluates on five SNAP graphs (Table 3).  This environment has
no network access, so :mod:`repro.graph.datasets` provides scaled-down
synthetic stand-ins whose degree distribution and average degree match
the originals (see DESIGN.md, "Substitutions").
"""

from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    rmat_graph,
    clustered_graph,
)

__all__ = [
    "CSRGraph",
    "barabasi_albert_graph",
    "clustered_graph",
    "erdos_renyi_graph",
    "rmat_graph",
]

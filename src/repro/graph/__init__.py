"""Graph substrate: CSR storage, generators, I/O, and partitioning.

The paper evaluates on five SNAP graphs (Table 3).  This environment has
no network access, so :mod:`repro.graph.datasets` provides scaled-down
synthetic stand-ins whose degree distribution and average degree match
the originals (see DESIGN.md, "Substitutions").
"""

from repro.graph.csr import CSRGraph
from repro.graph.relabel import (
    RelabeledCSRGraph,
    canonicalize_batch,
    degree_order_permutation,
    relabel_graph,
)
from repro.graph.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    rmat_graph,
    clustered_graph,
)

__all__ = [
    "CSRGraph",
    "RelabeledCSRGraph",
    "barabasi_albert_graph",
    "canonicalize_batch",
    "clustered_graph",
    "degree_order_permutation",
    "erdos_renyi_graph",
    "relabel_graph",
    "rmat_graph",
]

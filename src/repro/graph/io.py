"""Graph I/O: SNAP-style edge lists and a compact binary format.

The paper loads SNAP edge-list files.  :func:`load_edge_list` parses the
same format (``# comment`` header lines, whitespace-separated
``src dst [weight]`` rows); :func:`save_npz` / :func:`load_npz` give a
fast binary round-trip for generated stand-ins.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["load_edge_list", "save_edge_list", "load_npz", "save_npz"]


def load_edge_list(path: str, undirected: bool = False,
                   num_vertices: Optional[int] = None,
                   name: Optional[str] = None) -> CSRGraph:
    """Parse a SNAP-format edge-list file into a :class:`CSRGraph`.

    Lines starting with ``#`` are comments.  Each data line is
    ``src dst`` or ``src dst weight``.  Vertex ids need not be
    contiguous; the graph is sized by ``num_vertices`` or by
    ``max(id) + 1``.
    """
    srcs, dsts, wts = [], [], []
    weighted = None
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise ValueError(f"{path}:{lineno}: expected 2 or 3 fields")
            if weighted is None:
                weighted = len(parts) == 3
            elif weighted != (len(parts) == 3):
                raise ValueError(f"{path}:{lineno}: inconsistent weight column")
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            if weighted:
                wts.append(float(parts[2]))
    src = np.asarray(srcs, dtype=np.int64)
    dst = np.asarray(dsts, dtype=np.int64)
    n = num_vertices
    if n is None:
        n = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1) if src.size else 0
    edges = np.stack([src, dst], axis=1) if src.size else np.zeros((0, 2), np.int64)
    weights = np.asarray(wts, dtype=np.float64) if weighted else None
    return CSRGraph.from_edges(n, edges, weights=weights,
                               undirected=undirected,
                               name=name or os.path.basename(path))


def save_edge_list(graph: CSRGraph, path: str) -> None:
    """Write a graph as a SNAP-format edge list (with weights if any)."""
    degrees = np.diff(graph.indptr)
    src = np.repeat(np.arange(graph.num_vertices), degrees)
    with open(path, "w") as f:
        f.write(f"# {graph.name}: {graph.num_vertices} vertices, "
                f"{graph.num_edges} edges\n")
        if graph.is_weighted:
            for u, v, w in zip(src, graph.indices, graph.weights):
                f.write(f"{u} {v} {w:.6g}\n")
        else:
            for u, v in zip(src, graph.indices):
                f.write(f"{u} {v}\n")


def save_npz(graph: CSRGraph, path: str) -> None:
    """Binary round-trip save (numpy ``.npz``)."""
    arrays = {"indptr": graph.indptr, "indices": graph.indices,
              "name": np.asarray(graph.name)}
    if graph.weights is not None:
        arrays["weights"] = graph.weights
    np.savez_compressed(path, **arrays)


def load_npz(path: str) -> CSRGraph:
    """Load a graph saved with :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as data:
        weights = data["weights"] if "weights" in data else None
        return CSRGraph(data["indptr"], data["indices"], weights=weights,
                        name=str(data["name"]))

"""Synthetic graph generators.

The paper's datasets (Table 3) are SNAP social / citation graphs with
heavy-tailed degree distributions.  These generators produce graphs with
the same qualitative shape at laptop scale:

- :func:`rmat_graph` — Kronecker/R-MAT recursive generator; the standard
  stand-in for power-law social graphs (Orkut, LiveJournal, Friendster).
- :func:`barabasi_albert_graph` — preferential attachment; also
  power-law, convenient when an exact average degree is wanted.
- :func:`erdos_renyi_graph` — uniform random; used in tests as the
  "no skew" control.
- :func:`clustered_graph` — planted-partition graph with dense clusters;
  the substrate for the ClusterGCN experiments.

All generators are deterministic given a seed and return
:class:`~repro.graph.csr.CSRGraph`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "barabasi_albert_graph",
    "clustered_graph",
    "erdos_renyi_graph",
    "rmat_graph",
]


def _dedupe_edges(src: np.ndarray, dst: np.ndarray,
                  undirected: bool = False) -> np.ndarray:
    """Drop self-loops and duplicate (src, dst) pairs.

    With ``undirected=True`` the edge set is symmetrised *before*
    deduplication, so drawing both (u, v) and (v, u) cannot produce
    parallel edges in the final CSR.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if undirected and src.size:
        src, dst = (np.concatenate([src, dst]),
                    np.concatenate([dst, src]))
    keep = src != dst
    src, dst = src[keep], dst[keep]
    if src.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    key = src * (max(int(dst.max()), int(src.max())) + 1) + dst
    _, first = np.unique(key, return_index=True)
    return np.stack([src[first], dst[first]], axis=1)


def rmat_graph(
    num_vertices: int,
    num_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    undirected: bool = True,
    name: str = "rmat",
) -> CSRGraph:
    """Generate an R-MAT graph (Chakrabarti et al.).

    The defaults (a, b, c) = (0.57, 0.19, 0.19) are the Graph500
    parameters, which produce the skewed degree distributions typical of
    the social graphs in Table 3.  ``num_vertices`` is rounded up to the
    next power of two internally; isolated padding vertices are kept so
    callers get exactly the vertex count they asked for is *not*
    guaranteed — the returned graph has ``2**ceil(log2(n))`` vertices
    trimmed back down to ``num_vertices`` by modulo folding.
    """
    if num_vertices < 2:
        raise ValueError("need at least 2 vertices")
    if a + b + c > 1.0 + 1e-9 or min(a, b, c) < 0:
        raise ValueError("R-MAT probabilities must be non-negative and sum <= 1")
    rng = np.random.default_rng(seed)
    scale = int(np.ceil(np.log2(num_vertices)))
    # Draw each edge by descending the 2^scale x 2^scale adjacency
    # quadtree: at each level pick one of four quadrants (inverse
    # transform over the quadrant CDF — much faster than rng.choice).
    cdf = np.cumsum([a, b, c, 1.0 - a - b - c])
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        quadrant = np.searchsorted(cdf, rng.random(num_edges))
        np.minimum(quadrant, 3, out=quadrant)
        src = (src << 1) | (quadrant >> 1)
        dst = (dst << 1) | (quadrant & 1)
    src %= num_vertices
    dst %= num_vertices
    edges = _dedupe_edges(src, dst, undirected=undirected)
    return CSRGraph.from_edges(num_vertices, edges, undirected=False,
                               name=name)


def barabasi_albert_graph(
    num_vertices: int,
    attach_edges: int,
    seed: int = 0,
    name: str = "ba",
) -> CSRGraph:
    """Preferential-attachment graph; each new vertex attaches to
    ``attach_edges`` existing vertices with probability proportional to
    their degree.  Returned undirected (both directions), so the average
    degree is about ``2 * attach_edges``.
    """
    if attach_edges < 1:
        raise ValueError("attach_edges must be >= 1")
    if num_vertices <= attach_edges:
        raise ValueError("num_vertices must exceed attach_edges")
    rng = np.random.default_rng(seed)
    # Repeated-endpoints list trick: sampling uniformly from the list of
    # all edge endpoints is sampling proportionally to degree.
    targets = list(range(attach_edges))
    endpoint_pool: list = []
    srcs = np.empty((num_vertices - attach_edges) * attach_edges, dtype=np.int64)
    dsts = np.empty_like(srcs)
    k = 0
    for v in range(attach_edges, num_vertices):
        for t in targets:
            srcs[k] = v
            dsts[k] = t
            k += 1
        endpoint_pool.extend(targets)
        endpoint_pool.extend([v] * attach_edges)
        # Sample next targets (with replacement then dedupe-by-retry is
        # overkill at this scale; duplicates are simply tolerated and
        # removed when building the CSR).
        picks = rng.integers(0, len(endpoint_pool), size=attach_edges)
        targets = [endpoint_pool[p] for p in picks]
    edges = _dedupe_edges(srcs[:k], dsts[:k], undirected=True)
    return CSRGraph.from_edges(num_vertices, edges, undirected=False,
                               name=name)


def erdos_renyi_graph(
    num_vertices: int,
    avg_degree: float,
    seed: int = 0,
    undirected: bool = True,
    name: str = "er",
) -> CSRGraph:
    """Uniform random graph with the requested expected average degree."""
    if avg_degree < 0:
        raise ValueError("avg_degree must be non-negative")
    rng = np.random.default_rng(seed)
    num_edges = int(num_vertices * avg_degree / (2 if undirected else 1))
    src = rng.integers(0, num_vertices, size=num_edges)
    dst = rng.integers(0, num_vertices, size=num_edges)
    edges = _dedupe_edges(src, dst, undirected=undirected)
    return CSRGraph.from_edges(num_vertices, edges, undirected=False,
                               name=name)


def clustered_graph(
    num_vertices: int,
    num_clusters: int,
    intra_degree: float = 12.0,
    inter_degree: float = 2.0,
    seed: int = 0,
    name: str = "clustered",
) -> CSRGraph:
    """Planted-partition graph: dense within clusters, sparse across.

    Vertices ``[i * n/k, (i+1) * n/k)`` form cluster ``i``; the
    ClusterGCN experiments use this so that its cluster sampler has real
    structure to exploit.
    """
    if num_clusters < 1 or num_clusters > num_vertices:
        raise ValueError("num_clusters must be in [1, num_vertices]")
    rng = np.random.default_rng(seed)
    cluster_size = num_vertices // num_clusters
    if cluster_size < 2:
        raise ValueError("clusters must contain at least 2 vertices")

    n_intra = int(num_vertices * intra_degree / 2)
    n_inter = int(num_vertices * inter_degree / 2)

    # Intra-cluster edges: pick a cluster, then two members.
    cluster_of = rng.integers(0, num_clusters, size=n_intra)
    base = cluster_of * cluster_size
    span = np.where(cluster_of == num_clusters - 1,
                    num_vertices - base, cluster_size)
    intra_src = base + rng.integers(0, 1 << 30, size=n_intra) % span
    intra_dst = base + rng.integers(0, 1 << 30, size=n_intra) % span

    inter_src = rng.integers(0, num_vertices, size=n_inter)
    inter_dst = rng.integers(0, num_vertices, size=n_inter)

    src = np.concatenate([intra_src, inter_src])
    dst = np.concatenate([intra_dst, inter_dst])
    edges = _dedupe_edges(src, dst, undirected=True)
    return CSRGraph.from_edges(num_vertices, edges, undirected=False,
                               name=name)

"""Graph partitioning.

Two consumers:

- **ClusterGCN sampling** (Section 4.2) needs the graph divided into
  clusters; the paper "randomly assigned vertices in clusters".
  :func:`random_partition` reproduces that, and :func:`bfs_partition`
  provides the locality-aware alternative real ClusterGCN uses (METIS),
  approximated with BFS growth.
- **Large-graph sampling** (Section 8.4) needs *disjoint sub-graphs
  sized to fit GPU memory* that are shipped to the device on demand.
  :func:`partition_for_memory` produces contiguous vertex-range
  partitions whose CSR footprint respects a byte budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["Partition", "RelabeledPartition", "random_partition",
           "bfs_partition", "partition_for_memory", "partition_vertices"]


@dataclass
class Partition:
    """A disjoint division of a graph's vertices.

    ``assignment[v]`` is the partition id of vertex ``v``;
    ``members(i)`` lists the vertices of partition ``i``.
    """

    graph: CSRGraph
    assignment: np.ndarray
    num_parts: int

    def __post_init__(self) -> None:
        self.assignment = np.asarray(self.assignment, dtype=np.int64)
        if self.assignment.shape != (self.graph.num_vertices,):
            raise ValueError("assignment must cover every vertex")
        if self.assignment.size and (
                self.assignment.min() < 0
                or self.assignment.max() >= self.num_parts):
            raise ValueError("assignment ids out of range")

    def members(self, part: int) -> np.ndarray:
        return np.nonzero(self.assignment == part)[0]

    def sizes(self) -> np.ndarray:
        return np.bincount(self.assignment, minlength=self.num_parts)

    def edge_cut(self) -> int:
        """Number of edges crossing partitions (quality metric)."""
        degrees = self.graph.degrees_array
        src_part = np.repeat(self.assignment, degrees)
        dst_part = self.assignment[self.graph.indices]
        return int(np.count_nonzero(src_part != dst_part))

    def part_bytes(self, part: int) -> int:
        """CSR footprint of the sub-graph induced on a partition's
        vertices *including* their out-edges (what must be shipped to
        the GPU for transits living in this partition)."""
        verts = self.members(part)
        edges = int(self.graph.degrees_array[verts].sum()) if verts.size else 0
        return edges * 8 + (verts.size + 1) * 8


class RelabeledPartition(Partition):
    """A partition of a relabeled graph drawn in *canonical* space.

    The random assignment indexes original vertex ids, and ``members``
    lists each part in canonical (ascending-original-id) order mapped
    to new ids — the exact vertices, in the exact order, of the
    unpermuted graph's partition.  That keeps cluster-rooted sampling
    (ClusterGCN) bitwise round-trip safe under relabeling.
    """

    def members(self, part: int) -> np.ndarray:
        perm = self.graph.relabel_perm
        cached = getattr(self, "_orig_assignment", None)
        if cached is None:
            cached = self.assignment[perm]
            self._orig_assignment = cached
        return perm[np.nonzero(cached == part)[0]]


def random_partition(graph: CSRGraph, num_parts: int, seed: int = 0) -> Partition:
    """Assign each vertex to a uniformly random partition (the paper's
    ClusterGCN setup).

    On a relabeled graph the draw happens in canonical (original-id)
    space and is carried through the permutation, so the same seed
    yields the same clusters as on the unpermuted graph.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, num_parts, size=graph.num_vertices)
    canonical_of = getattr(graph, "canonical_of", None)
    if canonical_of is not None:
        return RelabeledPartition(graph, assignment[canonical_of], num_parts)
    return Partition(graph, assignment, num_parts)


def bfs_partition(graph: CSRGraph, num_parts: int, seed: int = 0) -> Partition:
    """Locality-aware partitioning by parallel BFS growth from random
    seeds — a cheap stand-in for METIS that keeps neighborhoods
    together, which is what ClusterGCN's clusters are for."""
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    n = graph.num_vertices
    rng = np.random.default_rng(seed)
    assignment = -np.ones(n, dtype=np.int64)
    target = int(np.ceil(n / num_parts))
    # More parts than vertices leaves the surplus parts seedless (and
    # empty); their frontiers must still exist for the growth loop.
    seeds = rng.permutation(n)[:num_parts]
    frontiers: List[List[int]] = [[int(s)] for s in seeds]
    frontiers.extend([] for _ in range(num_parts - len(frontiers)))
    counts = np.zeros(num_parts, dtype=np.int64)
    for p, s in enumerate(seeds):
        if assignment[s] < 0:
            assignment[s] = p
            counts[p] += 1
    active = True
    while active:
        active = False
        for p in range(num_parts):
            if counts[p] >= target or not frontiers[p]:
                continue
            next_frontier: List[int] = []
            for v in frontiers[p]:
                for u in graph.neighbors(v):
                    if assignment[u] < 0 and counts[p] < target:
                        assignment[u] = p
                        counts[p] += 1
                        next_frontier.append(int(u))
            frontiers[p] = next_frontier
            if next_frontier:
                active = True
    # Disconnected leftovers: round-robin into the emptiest parts.
    leftovers = np.nonzero(assignment < 0)[0]
    for v in leftovers:
        p = int(np.argmin(counts))
        assignment[v] = p
        counts[p] += 1
    return Partition(graph, assignment, num_parts)


def partition_for_memory(graph: CSRGraph, byte_budget: int) -> Partition:
    """Split vertices into contiguous ranges whose CSR footprint each
    fits in ``byte_budget`` bytes (Section 8.4's disjoint sub-graphs).

    Raises ``ValueError`` if a single vertex's adjacency alone exceeds
    the budget — such a graph cannot be sampled by range partitioning.
    """
    if byte_budget <= 16:
        raise ValueError("byte budget too small for any sub-graph")
    n = graph.num_vertices
    assignment = np.zeros(n, dtype=np.int64)
    part = 0
    part_edges = 0
    part_verts = 0
    degrees = np.diff(graph.indptr)
    for v in range(n):
        v_bytes = int(degrees[v]) * 8 + 8
        if v_bytes + 16 > byte_budget:
            raise ValueError(
                f"vertex {v} alone needs {v_bytes} bytes > budget")
        projected = (part_edges + int(degrees[v])) * 8 + (part_verts + 2) * 8
        if part_verts > 0 and projected > byte_budget:
            part += 1
            part_edges = 0
            part_verts = 0
        assignment[v] = part
        part_edges += int(degrees[v])
        part_verts += 1
    return Partition(graph, assignment, part + 1)


def partition_vertices(num_vertices: int, num_parts: int) -> List[np.ndarray]:
    """Even contiguous split of ``range(num_vertices)`` into
    ``num_parts`` chunks (multi-GPU sample distribution)."""
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    bounds = np.linspace(0, num_vertices, num_parts + 1, dtype=np.int64)
    return [np.arange(bounds[i], bounds[i + 1]) for i in range(num_parts)]

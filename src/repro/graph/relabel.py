"""Locality-aware CSR relabeling as a pure vertex permutation.

The autotuner's layout knob (GNNSampler's hardware-aware locality idea):
renumber vertices so that hot vertices — the high-degree transits most
steps gather from — occupy a dense prefix of every vertex-indexed array
(degrees, weight spans, row maxima).  Gathers during sampling then hit a
small, cache-resident region instead of striding the full vertex range.

The relabeling is a **pure permutation** with a bitwise round-trip
guarantee: sampling the relabeled graph and mapping the output back
through the inverse permutation reproduces, bit for bit, the samples of
the unpermuted run at the same seed.  That guarantee is what keeps the
verify suites' differential oracle usable with relabeling enabled, and
it rests on the *canonical edge layout*:

* The edge arrays stay in the **original physical order** — only the
  neighbor *values* are mapped (``indices = perm[orig.indices]``) and
  the weights are untouched.  ``np.cumsum(weights)`` is therefore
  byte-identical to the original graph's, so every weighted draw
  (global-cumsum binary search) and LADIES' edge-importance CDF produce
  the exact same floats.
* ``indptr[t]`` points at the original row of ``t``'s pre-image
  (``canonical_of[t]``), so the array is *not* monotone — row ``t``
  spans ``[indptr[t], indptr[t] + degree(t))``.  All samplers address
  rows positionally (``indptr[t] + pick``), never via ``indptr[t+1]``.
* Vertex-indexed arrays (degrees, weight row spans, row maxima,
  non-isolated list) are materialised in permuted order — these are the
  arrays whose gather locality the relabeling actually improves.
* Grouping happens in *canonical* (original-id) key space — see
  :func:`repro.core.transit_map.build_transit_map` — so the scheduling
  index assigns RNG draws to pairs in exactly the original order.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.api.types import NULL_VERTEX
from repro.graph.csr import CSRGraph

__all__ = ["RELABEL_ORDERS", "RelabeledCSRGraph", "degree_order_permutation",
           "relabel_graph", "canonicalize_array", "canonicalize_batch"]

#: Supported relabeling orders (``None`` / ``"none"`` means identity).
RELABEL_ORDERS = ("degree",)


def degree_order_permutation(graph: CSRGraph) -> np.ndarray:
    """``perm[orig_id] -> new_id`` for degree-descending relabeling.

    Vertices are ranked by out-degree, descending, ties broken by
    original id (stable) so the permutation is deterministic for a
    given graph.
    """
    degrees = graph.degrees()
    order = np.argsort(-degrees, kind="stable")  # new_id -> orig_id
    perm = np.empty(graph.num_vertices, dtype=np.int64)
    perm[order] = np.arange(graph.num_vertices, dtype=np.int64)
    return perm


class RelabeledCSRGraph(CSRGraph):
    """A :class:`CSRGraph` under a pure vertex permutation.

    Constructed by :func:`relabel_graph`; never call ``__init__``.
    ``perm`` maps original ids to new ids, ``canonical_of`` is its
    inverse.  ``indptr`` holds per-row *start* offsets into the
    original-order edge arrays and is not monotone; ``indptr[v + 1]``
    is meaningless, which is why every accessor that the base class
    implements via ``indptr[v + 1]`` is overridden here.
    """

    #: ``None`` on plain graphs — cheap "is this graph relabeled?" probe
    #: (``getattr(graph, "relabel_perm", None)``).
    relabel_perm: Optional[np.ndarray] = None

    @classmethod
    def _build(cls, orig: CSRGraph, perm: np.ndarray,
               order_name: str) -> "RelabeledCSRGraph":
        perm = np.ascontiguousarray(perm, dtype=np.int64)
        n = orig.num_vertices
        if perm.shape != (n,):
            raise ValueError("perm must have one entry per vertex")
        canonical_of = np.empty(n, dtype=np.int64)
        canonical_of[perm] = np.arange(n, dtype=np.int64)
        g = cls.__new__(cls)
        g.indices = perm[orig.indices] if orig.indices.size else \
            orig.indices.copy()
        g.indptr = np.empty(n + 1, dtype=np.int64)
        g.indptr[:n] = orig.indptr[:-1][canonical_of]
        g.indptr[n] = orig.num_edges  # sentinel; rows are (start, degree)
        g.weights = orig.weights  # shared: layout identical by design
        g.name = f"{orig.name}+{order_name}"
        g.perm = perm
        g.canonical_of = canonical_of
        g.relabel_perm = perm
        g.relabel_order = order_name
        degrees = orig.degrees()[canonical_of].copy()
        degrees.setflags(write=False)
        g._degrees_cache = degrees
        g._weight_prefix = None
        return g

    # ------------------------------------------------------------------
    # Row addressing (indptr[v + 1] is meaningless here)
    # ------------------------------------------------------------------

    def degree(self, v: int) -> int:
        return int(self.degrees_array[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbors of ``v`` as new ids, in the original row order
        (sorted by *canonical* id, not by new id)."""
        start = self.indptr[v]
        return self.indices[start:start + self.degrees_array[v]]

    def edge_weights(self, v: int) -> np.ndarray:
        if self.weights is None:
            raise ValueError("graph is unweighted")
        start = self.indptr[v]
        return self.weights[start:start + self.degrees_array[v]]

    def non_isolated_vertices(self) -> np.ndarray:
        """Non-isolated vertices in *canonical* order (the original
        graph's ascending-id order mapped through ``perm``), so
        positional root draws pick the same canonical vertices."""
        if getattr(self, "_non_isolated_cache", None) is None:
            orig_deg = self._orig_degrees()
            self._non_isolated_cache = self.perm[np.nonzero(orig_deg > 0)[0]]
        return self._non_isolated_cache

    # ------------------------------------------------------------------
    # Original-layout reconstruction (lazy; used by edge membership and
    # the weighted caches that need monotone offsets)
    # ------------------------------------------------------------------

    def _orig_degrees(self) -> np.ndarray:
        if getattr(self, "_orig_degrees_cache", None) is None:
            self._orig_degrees_cache = self.degrees_array[self.perm]
        return self._orig_degrees_cache

    def _orig_indptr(self) -> np.ndarray:
        if getattr(self, "_orig_indptr_cache", None) is None:
            out = np.zeros(self.num_vertices + 1, dtype=np.int64)
            np.cumsum(self._orig_degrees(), out=out[1:])
            self._orig_indptr_cache = out
        return self._orig_indptr_cache

    def to_original(self) -> CSRGraph:
        """Reconstruct the unpermuted graph (for tests / round trips)."""
        return CSRGraph(self._orig_indptr(), self.canonical_of[self.indices],
                        weights=None if self.weights is None
                        else self.weights.copy(),
                        name=self.name.rsplit("+", 1)[0])

    # ------------------------------------------------------------------
    # Edge membership — canonical key space
    # ------------------------------------------------------------------

    def has_edge(self, u: int, v: int) -> bool:
        row = self.canonical_of[self.neighbors(u)]  # sorted ascending
        cv = self.canonical_of[v]
        pos = np.searchsorted(row, cv)
        return bool(pos < row.size and row[pos] == cv)

    def _edge_keys(self) -> np.ndarray:
        """Globally sorted ``canonical_src * n + canonical_dst`` keys —
        identical to the original graph's key array, because the edge
        storage order is the original one."""
        if getattr(self, "_edge_key_cache", None) is None:
            row_of_edge = np.repeat(
                np.arange(self.num_vertices, dtype=np.int64),
                self._orig_degrees())
            self._edge_key_cache = (row_of_edge * self.num_vertices
                                    + self.canonical_of[self.indices])
        return self._edge_key_cache

    def has_edges(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if u.shape != v.shape:
            raise ValueError("u and v must have the same shape")
        if u.size == 0:
            return np.zeros(0, dtype=bool)
        # Same bitmap / sorted-key machinery as the base class, with the
        # query mapped into canonical key space first.
        query = (self.canonical_of[u] * np.int64(self.num_vertices)
                 + self.canonical_of[v])
        bitmap = self._edge_bitmap()
        if bitmap is not None:
            return (bitmap[query >> 3] >> (query & 7).astype(np.uint8)
                    ) & 1 > 0
        keys = self._edge_keys()
        pos = np.searchsorted(keys, query)
        found = np.zeros(u.shape, dtype=bool)
        in_range = pos < keys.size
        idx = np.nonzero(in_range)
        found[idx] = keys[pos[idx]] == query[idx]
        return found

    # ------------------------------------------------------------------
    # Weighted-sampling caches.  The edge layout is the original one, so
    # every cumsum / prefix is reproduced with the exact original float
    # operations; vertex-indexed results are then gathered into the
    # permuted order — bit-identical to permuting the original arrays.
    # ------------------------------------------------------------------

    def weight_prefix(self) -> np.ndarray:
        if self.weights is None:
            raise ValueError("graph is unweighted")
        if self._weight_prefix is None:
            if self.weights.size == 0:
                self._weight_prefix = np.zeros(0, dtype=np.float64)
                return self._weight_prefix
            indptr = self._orig_indptr()
            prefix = np.cumsum(self.weights)
            row_base = np.zeros_like(prefix)
            starts = indptr[:-1]
            valid = starts < indptr[1:]
            base_per_row = np.where(starts > 0, prefix[starts - 1], 0.0)
            row_base[:] = np.repeat(base_per_row[valid],
                                    np.diff(indptr)[valid])
            self._weight_prefix = prefix - row_base
        return self._weight_prefix

    def weight_row_spans(self):
        if self.weights is None:
            raise ValueError("graph is unweighted")
        if getattr(self, "_weight_row_spans_cache", None) is None:
            cumsum = self.global_weight_cumsum()
            starts = self.indptr[:-1]
            degrees = self.degrees_array
            ends = starts + degrees
            base = np.where(starts > 0, cumsum[starts - 1], 0.0)
            total = np.where(degrees > 0, cumsum[ends - 1] - base, 0.0)
            self._weight_row_spans_cache = (base, total)
        return self._weight_row_spans_cache

    def row_max_weight(self) -> np.ndarray:
        if self.weights is None:
            raise ValueError("graph is unweighted")
        if getattr(self, "_row_max_cache", None) is None:
            indptr = self._orig_indptr()
            out = np.zeros(self.num_vertices, dtype=np.float64)
            starts = indptr[:-1]
            nonempty = np.nonzero(starts < indptr[1:])[0]
            if nonempty.size:
                out[nonempty] = np.maximum.reduceat(
                    self.weights, starts[nonempty])
            self._row_max_cache = out[self.canonical_of]
        return self._row_max_cache

    def row_total_weight(self) -> np.ndarray:
        prefix = self.weight_prefix()
        totals = np.zeros(self.num_vertices, dtype=np.float64)
        degrees = self.degrees_array
        nonempty = degrees > 0
        ends = self.indptr[:-1] + degrees
        totals[nonempty] = prefix[ends[nonempty] - 1]
        return totals

    # ------------------------------------------------------------------

    def with_random_weights(self, low: float = 1.0, high: float = 5.0,
                            seed: int = 0) -> CSRGraph:
        raise ValueError(
            "cannot attach weights to a relabeled graph; weight the "
            "original graph first, then relabel")

    def memory_bytes(self) -> int:
        return (super().memory_bytes() + self.perm.nbytes
                + self.canonical_of.nbytes)

    def _sort_rows(self) -> None:  # rows stay in canonical order
        raise RuntimeError("relabeled graphs are never row-sorted in place")

    def __repr__(self) -> str:
        kind = "weighted" if self.is_weighted else "unweighted"
        return (f"RelabeledCSRGraph(name={self.name!r}, "
                f"vertices={self.num_vertices}, edges={self.num_edges}, "
                f"order={self.relabel_order!r}, {kind})")


def relabel_graph(graph: CSRGraph, order: Optional[str] = "degree",
                  perm: Optional[np.ndarray] = None) -> CSRGraph:
    """Relabel ``graph`` under ``order`` (or an explicit ``perm``).

    ``order`` of ``None`` / ``"none"`` returns the graph unchanged.
    Relabeling an already-relabeled graph is rejected: permutations must
    stay single-level so ``canonical_of`` maps straight back to the
    original id space.
    """
    if perm is None and (order is None or order == "none"):
        return graph
    if getattr(graph, "relabel_perm", None) is not None:
        raise ValueError(f"graph {graph.name!r} is already relabeled")
    if perm is not None:
        return RelabeledCSRGraph._build(graph, perm, order or "custom")
    if order not in RELABEL_ORDERS:
        raise ValueError(f"unknown relabel order {order!r}; "
                         f"choose from {RELABEL_ORDERS}")
    return RelabeledCSRGraph._build(graph, degree_order_permutation(graph),
                                    order)


def canonicalize_array(arr: np.ndarray,
                       canonical_of: np.ndarray) -> np.ndarray:
    """Map an array of new-space vertex ids back to original ids,
    preserving ``NULL_VERTEX`` entries."""
    arr = np.asarray(arr)
    if arr.size == 0:
        return arr.astype(np.int64, copy=True)
    out = np.where(arr == NULL_VERTEX, np.int64(NULL_VERTEX),
                   canonical_of[np.maximum(arr, 0)])
    return out.astype(np.int64, copy=False)


def canonicalize_batch(batch) -> None:
    """Invert a relabeled graph's permutation on a finished batch,
    in place: roots, every step's vertices, and recorded edge
    endpoints all return to original ids.  Idempotent per batch."""
    graph = batch.graph
    canonical_of = getattr(graph, "canonical_of", None)
    if canonical_of is None or getattr(batch, "_relabel_canonicalized",
                                       False):
        return
    batch.roots = canonicalize_array(batch.roots, canonical_of)
    batch.step_vertices = [canonicalize_array(sv, canonical_of)
                           for sv in batch.step_vertices]
    canon_edges = []
    for edges in batch.edges:
        if edges.size:
            mapped = edges.copy()
            mapped[:, 1] = canonicalize_array(edges[:, 1], canonical_of)
            mapped[:, 2] = canonicalize_array(edges[:, 2], canonical_of)
            canon_edges.append(mapped)
        else:
            canon_edges.append(edges)
    batch.edges = canon_edges
    batch._relabel_canonicalized = True

"""Dataset registry: scaled stand-ins for the paper's SNAP graphs.

Table 3 of the paper:

=================  =======  ==========  ==========  ===========
Name               Abrv     # of Nodes  # of Edges  Avg Degree
=================  =======  ==========  ==========  ===========
Protein-Protein    PPI      50K         1.4M        28.0
com-Orkut          Orkut    3M          117M        39.0
cit-Patents        Patents  3.77M       16.5M       4.37
soc-LiveJournal1   LiveJ    4.8M        68.9M       14.3
com-Friendster     FriendS  65.6M       1.8B        27.4
=================  =======  ==========  ==========  ===========

SNAP downloads are unavailable offline, so each dataset is generated
synthetically with (i) the original *average degree*, (ii) a power-law
degree distribution (R-MAT), and (iii) node counts scaled down by a
single common factor so that the relative size ordering — and therefore
which graphs stress which kernels — is preserved.  ``FriendS`` is
additionally flagged ``fits_in_gpu=False`` at the modeled 16 GB by
scaling its *modeled* footprint (see :func:`scaled_memory_bytes`), which
drives the Section 8.4 out-of-memory experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.generators import clustered_graph, rmat_graph

__all__ = ["DatasetSpec", "SPECS", "load", "names", "paper_row",
           "scaled_memory_bytes"]

#: Common down-scale factor from the paper's node counts to ours.
SCALE = 300


@dataclass(frozen=True)
class DatasetSpec:
    """Calibration record for one paper dataset."""

    name: str
    abrv: str
    paper_nodes: int
    paper_edges: int
    avg_degree: float
    #: True when the full-size graph fits in the modeled 16 GB V100.
    fits_in_gpu: bool = True

    @property
    def nodes(self) -> int:
        """Scaled node count used by the reproduction.

        The floor keeps even the smallest stand-in (PPI) large enough
        that sampling runs exercise real parallelism.
        """
        return max(4000, self.paper_nodes // SCALE)

    @property
    def edges(self) -> int:
        """Scaled (directed) edge target to match the average degree."""
        return int(self.nodes * self.avg_degree)


SPECS: Dict[str, DatasetSpec] = {
    "ppi": DatasetSpec("Protein-Protein Interactions", "PPI",
                       50_000, 1_400_000, 28.0),
    "orkut": DatasetSpec("com-Orkut", "Orkut", 3_000_000, 117_000_000, 39.0),
    "patents": DatasetSpec("cit-Patents", "Patents",
                           3_770_000, 16_500_000, 4.37),
    "livej": DatasetSpec("soc-LiveJournal1", "LiveJ",
                         4_800_000, 68_900_000, 14.3),
    "friendster": DatasetSpec("com-Friendster", "FriendS",
                              65_600_000, 1_800_000_000, 27.4,
                              fits_in_gpu=False),
    # Reddit appears in Tables 1 and 5 of the paper without a Table 3
    # row; we model it between PPI and Patents in size.
    "reddit": DatasetSpec("Reddit", "Reddit", 233_000, 11_600_000, 49.8),
}

_cache: Dict[tuple, CSRGraph] = {}


def names() -> list:
    """Dataset keys in Table 3 order (plus reddit last)."""
    return ["ppi", "orkut", "patents", "livej", "friendster", "reddit"]


def load(name: str, seed: int = 0, weighted: bool = False,
         scale: Optional[int] = None) -> CSRGraph:
    """Load (generate) a dataset stand-in by key.

    Parameters
    ----------
    name: one of :func:`names` (case-insensitive).
    seed: generation seed; the same (name, seed, scale) is cached.
    weighted: attach uniform [1, 5) edge weights (paper Section 8).
    scale: override the global :data:`SCALE` down-scale factor.
    """
    key = name.lower()
    if key not in SPECS:
        raise KeyError(f"unknown dataset {name!r}; choose from {names()}")
    spec = SPECS[key]
    factor = SCALE if scale is None else scale
    nodes = max(4000, spec.paper_nodes // factor)
    edges = int(nodes * spec.avg_degree)
    cache_key = (key, seed, factor, weighted)
    if cache_key not in _cache:
        # R-MAT draws directed edges that are then symmetrised and
        # deduplicated; 0.62x the directed target compensates the
        # dedupe losses so the average degree lands near the paper's.
        graph = rmat_graph(nodes, max(int(edges * 0.62), nodes), seed=seed,
                           undirected=True, name=spec.abrv)
        if weighted:
            graph = graph.with_random_weights(seed=seed + 1)
            graph.name = spec.abrv
        _cache[cache_key] = graph
    return _cache[cache_key]


def load_clustered(name: str, num_clusters: int, seed: int = 0) -> CSRGraph:
    """ClusterGCN variant: same scale as ``name`` but with planted
    clusters so cluster sampling has real structure."""
    spec = SPECS[name.lower()]
    graph = clustered_graph(spec.nodes, num_clusters,
                            intra_degree=spec.avg_degree * 0.8,
                            inter_degree=spec.avg_degree * 0.2,
                            seed=seed, name=f"{spec.abrv}-clustered")
    return graph


def scaled_memory_bytes(name: str) -> int:
    """Modeled device-memory footprint of the *full-size* graph.

    Used to decide whether a dataset fits in the modeled 16 GB GPU: the
    generated graph is small, but Section 8.4's out-of-memory behaviour
    depends on the original's footprint (8 bytes per edge for CSR
    indices at the paper's scale, plus offsets).
    """
    spec = SPECS[name.lower()]
    return spec.paper_edges * 8 + (spec.paper_nodes + 1) * 8


def paper_row(name: str) -> Dict[str, object]:
    """Table 3 row (paper-reported values) for reporting."""
    spec = SPECS[name.lower()]
    return {
        "name": spec.name,
        "abrv": spec.abrv,
        "nodes": spec.paper_nodes,
        "edges": spec.paper_edges,
        "avg_degree": spec.avg_degree,
    }


def measured_row(name: str, seed: int = 0) -> Dict[str, object]:
    """Table 3 row as measured on the generated stand-in."""
    graph = load(name, seed=seed)
    degs = graph.degrees()
    return {
        "name": SPECS[name.lower()].name,
        "abrv": graph.name,
        "nodes": graph.num_vertices,
        "edges": graph.num_edges,
        "avg_degree": round(float(graph.avg_degree), 2),
        "max_degree": int(degs.max()) if degs.size else 0,
    }

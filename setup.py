"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` needs a legacy path when PEP 517 build isolation
is unavailable (offline) and ``wheel`` is absent; all real metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()

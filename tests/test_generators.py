"""Graph generators: shape, determinism, and validation."""

import numpy as np
import pytest

from repro.graph.generators import (
    barabasi_albert_graph,
    clustered_graph,
    erdos_renyi_graph,
    rmat_graph,
)
from repro.graph.partition import Partition


class TestRMAT:
    def test_basic_shape(self):
        g = rmat_graph(1000, 5000, seed=0)
        assert g.num_vertices == 1000
        assert g.num_edges > 4000  # dedupe loses a little

    def test_deterministic(self):
        a = rmat_graph(500, 2000, seed=9)
        b = rmat_graph(500, 2000, seed=9)
        assert a == b

    def test_seed_changes_graph(self):
        a = rmat_graph(500, 2000, seed=1)
        b = rmat_graph(500, 2000, seed=2)
        assert not (a == b)

    def test_power_law_skew(self):
        g = rmat_graph(4000, 40000, seed=3)
        degs = g.degrees()
        # Power-law: the hub degree dwarfs the average.
        assert degs.max() > 8 * degs.mean()

    def test_no_self_loops(self):
        g = rmat_graph(256, 2000, seed=4)
        degrees = np.diff(g.indptr)
        src = np.repeat(np.arange(g.num_vertices), degrees)
        assert not (src == g.indices).any()

    def test_no_duplicate_edges(self):
        g = rmat_graph(256, 2000, seed=4, undirected=False)
        degrees = np.diff(g.indptr)
        src = np.repeat(np.arange(g.num_vertices), degrees)
        keys = src * g.num_vertices + g.indices
        assert np.unique(keys).size == keys.size

    def test_directed_variant(self):
        g = rmat_graph(256, 2000, seed=5, undirected=False)
        # A directed R-MAT is asymmetric somewhere.
        degrees = np.diff(g.indptr)
        src = np.repeat(np.arange(g.num_vertices), degrees)
        asym = sum(1 for u, v in zip(src[:200], g.indices[:200])
                   if not g.has_edge(int(v), int(u)))
        assert asym > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            rmat_graph(1, 10)
        with pytest.raises(ValueError):
            rmat_graph(100, 10, a=0.9, b=0.9, c=0.9)


class TestErdosRenyi:
    def test_avg_degree_close(self):
        g = erdos_renyi_graph(4000, 10.0, seed=0)
        assert g.avg_degree == pytest.approx(10.0, rel=0.15)

    def test_no_skew(self):
        g = erdos_renyi_graph(4000, 10.0, seed=0)
        degs = g.degrees()
        assert degs.max() < 5 * degs.mean()

    def test_zero_degree(self):
        g = erdos_renyi_graph(100, 0.0, seed=0)
        assert g.num_edges == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(100, -1.0)


class TestBarabasiAlbert:
    def test_shape(self):
        g = barabasi_albert_graph(500, 4, seed=0)
        assert g.num_vertices == 500
        assert g.avg_degree == pytest.approx(8.0, rel=0.3)

    def test_preferential_attachment_skew(self):
        g = barabasi_albert_graph(2000, 3, seed=1)
        degs = g.degrees()
        assert degs.max() > 5 * degs.mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(10, 0)
        with pytest.raises(ValueError):
            barabasi_albert_graph(3, 5)


class TestClustered:
    def test_shape(self):
        g = clustered_graph(1200, 12, seed=0)
        assert g.num_vertices == 1200

    def test_clusters_are_denser_inside(self):
        g = clustered_graph(1200, 12, intra_degree=14.0, inter_degree=2.0,
                            seed=0)
        size = 1200 // 12
        assignment = np.minimum(np.arange(1200) // size, 11)
        cut = Partition(g, assignment, 12).edge_cut()
        # Most edges stay inside their planted cluster.
        assert cut < 0.45 * g.num_edges

    def test_validation(self):
        with pytest.raises(ValueError):
            clustered_graph(100, 0)
        with pytest.raises(ValueError):
            clustered_graph(10, 10)

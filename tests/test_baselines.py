"""Baseline engines: functional validity and modeled relationships."""

import numpy as np
import pytest

from repro.api.apps import (
    ClusterGCN,
    DeepWalk,
    FastGCN,
    KHop,
    LADIES,
    Layer,
    MVS,
    MultiRW,
    Node2Vec,
    PPR,
)
from repro.api.types import NULL_VERTEX
from repro.baselines import (
    FrontierEngine,
    KnightKingEngine,
    MessagePassingEngine,
    ReferenceSamplerEngine,
    SampleParallelEngine,
    VanillaTPEngine,
)
from repro.core.engine import NextDoorEngine

GPU_ENGINES = [SampleParallelEngine, VanillaTPEngine, FrontierEngine,
               MessagePassingEngine]


class TestFunctionalValidity:
    @pytest.mark.parametrize("engine_cls", GPU_ENGINES)
    def test_walks_are_paths_on_every_engine(self, engine_cls,
                                             medium_graph):
        r = engine_cls().run(DeepWalk(6), medium_graph, num_samples=32,
                             seed=2)
        walks = r.get_final_samples()
        roots = r.batch.roots
        for s in range(32):
            prev = int(roots[s, 0])
            for v in walks[s]:
                if v == NULL_VERTEX:
                    break
                assert medium_graph.has_edge(prev, int(v))
                prev = int(v)

    @pytest.mark.parametrize("engine_cls", GPU_ENGINES)
    def test_khop_shapes_on_every_engine(self, engine_cls, medium_graph):
        r = engine_cls().run(KHop((4, 2)), medium_graph, num_samples=16,
                             seed=2)
        hops = r.get_final_samples()
        assert hops[0].shape == (16, 4)
        assert hops[1].shape == (16, 8)

    def test_knightking_walks_are_paths(self, medium_graph):
        r = KnightKingEngine().run(DeepWalk(6), medium_graph,
                                   num_samples=32, seed=2)
        walks = r.get_final_samples()
        roots = r.batch.roots
        for s in range(32):
            prev = int(roots[s, 0])
            for v in walks[s]:
                if v == NULL_VERTEX:
                    break
                assert medium_graph.has_edge(prev, int(v))
                prev = int(v)

    @pytest.mark.parametrize("app_factory", [
        lambda: DeepWalk(5), lambda: PPR(max_steps=30),
        lambda: Node2Vec(walk_length=5),
        lambda: MultiRW(num_roots=5, walk_length=5),
        lambda: KHop((4, 2)), lambda: Layer(step_size=10, max_size=20),
        lambda: FastGCN(step_size=8, batch_size=4),
        lambda: LADIES(step_size=8, batch_size=4),
        lambda: MVS(batch_size=4),
        lambda: ClusterGCN(num_clusters=8, clusters_per_sample=2),
    ])
    def test_reference_sampler_runs_every_app(self, app_factory,
                                              medium_graph):
        r = ReferenceSamplerEngine().run(app_factory(), medium_graph,
                                         num_samples=8, seed=2)
        assert r.seconds > 0
        assert r.engine == "ReferenceSampler"


class TestKnightKingRestrictions:
    def test_rejects_collective(self, medium_graph):
        with pytest.raises(ValueError, match="collective"):
            KnightKingEngine().run(Layer(), medium_graph, num_samples=4)

    def test_rejects_multi_vertex_steps(self, medium_graph):
        with pytest.raises(ValueError, match="per step"):
            KnightKingEngine().run(KHop((25, 10)), medium_graph,
                                   num_samples=4)

    def test_accepts_every_random_walk(self, medium_graph):
        for app in (DeepWalk(5), PPR(max_steps=20),
                    Node2Vec(walk_length=5),
                    MultiRW(num_roots=4, walk_length=5)):
            r = KnightKingEngine().run(app, medium_graph, num_samples=8,
                                       seed=0)
            assert r.steps_run > 0


class TestModeledRelationships:
    """The paper's headline orderings, at test-sized workloads."""

    def test_nd_beats_reference_sampler(self, medium_graph):
        nd = NextDoorEngine().run(KHop((25, 10)), medium_graph,
                                  num_samples=512, seed=0)
        ref = ReferenceSamplerEngine().run(KHop((25, 10)), medium_graph,
                                           num_samples=512, seed=0)
        assert ref.seconds > 10 * nd.seconds

    def test_nd_beats_knightking_at_scale(self, medium_weighted):
        S = medium_weighted.num_vertices
        nd = NextDoorEngine().run(DeepWalk(30), medium_weighted,
                                  num_samples=S, seed=0)
        kk = KnightKingEngine().run(DeepWalk(30), medium_weighted,
                                    num_samples=S, seed=0)
        assert kk.seconds > 2 * nd.seconds

    def test_nd_beats_frameworks(self, medium_graph):
        nd = NextDoorEngine().run(KHop((25, 10)), medium_graph,
                                  num_samples=512, seed=0)
        for cls in (FrontierEngine, MessagePassingEngine):
            fw = cls().run(KHop((25, 10)), medium_graph,
                           num_samples=512, seed=0)
            assert fw.seconds > nd.seconds

    def test_sp_pays_more_l2_reads(self, medium_graph):
        nd = NextDoorEngine().run(KHop((25, 10)), medium_graph,
                                  num_samples=512, seed=0)
        sp = SampleParallelEngine().run(KHop((25, 10)), medium_graph,
                                        num_samples=512, seed=0)
        assert (sp.metrics.counters.l2_read_transactions
                > nd.metrics.counters.l2_read_transactions)

    def test_sp_has_no_index_phase(self, medium_graph):
        sp = SampleParallelEngine().run(DeepWalk(5), medium_graph,
                                        num_samples=64, seed=0)
        assert sp.scheduling_index_seconds == 0.0

    def test_tp_pays_index_phase(self, medium_graph):
        tp = VanillaTPEngine().run(DeepWalk(5), medium_graph,
                                   num_samples=64, seed=0)
        assert tp.scheduling_index_seconds > 0.0

    def test_engine_names(self, medium_graph):
        assert SampleParallelEngine.engine_name == "SP"
        assert VanillaTPEngine.engine_name == "TP"
        assert FrontierEngine.engine_name == "Gunrock-style"
        assert MessagePassingEngine.engine_name == "Tigr-style"

"""OpenMetrics exporter: rendering, escaping, validation, round-trip,
and the periodic snapshot writer."""

import json
import math
import os
import time

import pytest

from repro.obs.export import write_stats
from repro.obs.metrics import MetricsRegistry, scalar_of
from repro.obs.openmetrics import (
    PeriodicStatsWriter,
    metric_name,
    openmetrics_text,
    parse_openmetrics,
    validate_openmetrics,
    write_openmetrics,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestRendering:
    def test_empty_registry_is_just_eof(self, registry):
        text = openmetrics_text(registry)
        assert text == "# EOF\n"
        assert validate_openmetrics(text) == {}

    def test_counter_gets_total_suffix(self, registry):
        registry.counter("pool.chunk_errors").inc(3)
        text = openmetrics_text(registry)
        assert "# TYPE pool_chunk_errors counter" in text
        assert "pool_chunk_errors_total 3" in text
        samples = validate_openmetrics(text)
        assert samples["pool_chunk_errors_total"][""] == 3.0

    def test_gauge_plain_sample(self, registry):
        registry.gauge("runtime.backend_active").set(2)
        samples = validate_openmetrics(openmetrics_text(registry))
        assert samples["runtime_backend_active"][""] == 2.0

    def test_histogram_has_cumulative_buckets_sum_count(self, registry):
        h = registry.histogram("pool.chunk_seconds")
        for v in (0.001, 0.01, 0.01, 0.1):
            h.observe(v)
        text = openmetrics_text(registry)
        samples = validate_openmetrics(text)  # checks cumulativity
        assert samples["pool_chunk_seconds_count"][""] == 4.0
        assert samples["pool_chunk_seconds_sum"][""] == \
            pytest.approx(0.121)
        buckets = samples["pool_chunk_seconds_bucket"]
        assert buckets['le="+Inf"'] == 4.0

    def test_labeled_family_renders_every_series(self, registry):
        registry.counter("pool.chunk_errors",
                         labels={"app": "DeepWalk",
                                 "backend": "numpy"}).inc()
        registry.counter("pool.chunk_errors",
                         labels={"app": "LADIES",
                                 "backend": "numba"}).inc(2)
        samples = validate_openmetrics(openmetrics_text(registry))
        series = samples["pool_chunk_errors_total"]
        assert series['app="DeepWalk",backend="numpy"'] == 1.0
        assert series['app="LADIES",backend="numba"'] == 2.0

    def test_dotted_and_hyphenated_names_map_to_underscores(self):
        assert metric_name("pool.chunk_seconds") == "pool_chunk_seconds"
        assert metric_name("tune.trial-seconds") == "tune_trial_seconds"
        with pytest.raises(ValueError, match="cannot express"):
            metric_name("so wrong")


class TestEscaping:
    def test_label_values_with_quotes_backslashes_newlines(
            self, registry):
        nasty = 'path\\to "file"\nnext'
        registry.counter("io.errors", labels={"file": nasty}).inc()
        text = openmetrics_text(registry)
        assert '\\\\' in text and '\\"' in text and "\\n" in text
        samples = validate_openmetrics(text)
        (labelstr, value), = samples["io_errors_total"].items()
        # parse_openmetrics unescapes, so the value round-trips.
        assert labelstr == f'file="{nasty}"'
        assert value == 1.0

    def test_label_values_with_spaces_and_commas(self, registry):
        registry.gauge("g", labels={"why": "a, b and c"}).set(1)
        samples = validate_openmetrics(openmetrics_text(registry))
        assert samples["g"]['why="a, b and c"'] == 1.0


class TestNonFinite:
    def test_nan_inf_observations_are_dropped_not_exported(
            self, registry):
        h = registry.histogram("pool.chunk_seconds")
        h.observe(0.01)
        h.observe(float("nan"))
        h.observe(float("inf"))
        assert h.count == 1 and h.dropped == 2
        samples = validate_openmetrics(openmetrics_text(registry))
        assert samples["pool_chunk_seconds_count"][""] == 1.0
        assert math.isfinite(samples["pool_chunk_seconds_sum"][""])

    def test_inf_gauge_still_parses(self, registry):
        registry.gauge("tune.best_score").set(float("inf"))
        samples = validate_openmetrics(openmetrics_text(registry))
        assert samples["tune_best_score"][""] == float("inf")


class TestPrefixFilter:
    def test_prefix_limits_output_to_matching_families(self, registry):
        registry.counter("pool.chunk_errors",
                         labels={"app": "DeepWalk"}).inc()
        registry.counter("engine.runs").inc()
        registry.histogram("pool.chunk_seconds").observe(0.01)
        text = openmetrics_text(registry, prefix="pool.")
        samples = validate_openmetrics(text)
        assert "engine_runs_total" not in samples
        assert samples["pool_chunk_errors_total"][
            'app="DeepWalk"'] == 1.0
        assert "pool_chunk_seconds_count" in samples


class TestRoundTrip:
    def test_values_match_registry_snapshot(self, registry):
        registry.counter("a.count").inc(7)
        registry.gauge("b.level").set(0.25)
        registry.histogram("c.seconds",
                           labels={"stage": "step"}).observe(0.02)
        samples = validate_openmetrics(openmetrics_text(registry))
        snap = registry.snapshot()
        assert samples["a_count_total"][""] == snap["a.count"]
        assert samples["b_level"][""] == snap["b.level"]
        assert samples["c_seconds_count"]['stage="step"'] == \
            scalar_of(snap["c.seconds"])


class TestValidator:
    def test_missing_eof_rejected(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("# TYPE a counter\na_total 1\n")

    def test_content_after_eof_rejected(self):
        with pytest.raises(ValueError, match="after # EOF"):
            parse_openmetrics("# EOF\na 1\n")

    def test_undeclared_sample_rejected(self):
        with pytest.raises(ValueError, match="no declared family"):
            validate_openmetrics("stray_sample 1\n# EOF\n")

    def test_non_cumulative_buckets_rejected(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="0.1"} 5\n'
                'h_bucket{le="+Inf"} 3\n'
                "h_sum 1\nh_count 3\n# EOF\n")
        with pytest.raises(ValueError, match="not cumulative"):
            validate_openmetrics(text)

    def test_histogram_without_inf_bucket_rejected(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="0.1"} 1\n'
                "h_sum 1\nh_count 1\n# EOF\n")
        with pytest.raises(ValueError, match=r"\+Inf"):
            validate_openmetrics(text)

    def test_bad_labelset_rejected(self):
        with pytest.raises(ValueError, match="bad labelset"):
            parse_openmetrics('# TYPE g gauge\ng{oops} 1\n# EOF\n')


class TestWriters:
    def test_write_openmetrics_is_atomic_and_validates(
            self, registry, tmp_path):
        registry.counter("n").inc()
        path = str(tmp_path / "metrics.prom")
        assert write_openmetrics(path, registry) == path
        validate_openmetrics(open(path).read())
        assert not [p for p in os.listdir(tmp_path)
                    if ".tmp." in p], "tmp file left behind"

    def test_write_stats_fmt_dispatch(self, registry, tmp_path):
        registry.counter("n").inc(2)
        om = str(tmp_path / "s.prom")
        js = str(tmp_path / "s.json")
        write_stats(om, registry=registry, fmt="openmetrics")
        validate_openmetrics(open(om).read())
        write_stats(js, registry=registry)
        assert json.load(open(js))["metrics"]["n"] == 2.0
        with pytest.raises(ValueError, match="fmt"):
            write_stats(js, registry=registry, fmt="xml")

    def test_periodic_writer_writes_and_final_snapshot(
            self, registry, tmp_path):
        registry.counter("ticks").inc()
        path = str(tmp_path / "periodic.prom")
        writer = PeriodicStatsWriter(path, fmt="openmetrics",
                                     interval=0.01, registry=registry)
        with writer:
            deadline = time.time() + 5.0
            while writer.writes == 0 and time.time() < deadline:
                time.sleep(0.01)
        assert writer.writes >= 2  # at least one loop write + final
        samples = validate_openmetrics(open(path).read())
        assert samples["ticks_total"][""] == 1.0

    def test_periodic_writer_rejects_bad_args(self, tmp_path):
        with pytest.raises(ValueError, match="fmt"):
            PeriodicStatsWriter(str(tmp_path / "x"), fmt="csv")
        with pytest.raises(ValueError, match="interval"):
            PeriodicStatsWriter(str(tmp_path / "x"), interval=0)

    def test_periodic_writer_double_start_rejected(self, tmp_path):
        writer = PeriodicStatsWriter(str(tmp_path / "x"), interval=60)
        writer.start()
        try:
            with pytest.raises(RuntimeError, match="started"):
                writer.start()
        finally:
            writer.stop()

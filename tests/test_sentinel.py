"""Perf-regression sentinel: comparison logic and the
`repro bench check` CLI front-end."""

import copy
import io
import json

import pytest

from repro.bench.sentinel import (
    DEFAULT_TOLERANCE,
    compare_autotune,
    compare_reports,
    compare_wallclock,
    format_verdict,
    load_report,
)
from repro.cli import main


def wallclock_report(**overrides):
    report = {
        "mode": "quick", "workers": 0, "backend": "numpy",
        "chunk_size": 4096, "platform": "test-host", "cpu_count": 8,
        "python": "3.11", "numpy": "1.26", "git_sha": "base-sha",
        "results": {
            "DeepWalk-100": {"NextDoor": {"seconds": 0.100},
                             "SP": {"seconds": 0.300}},
            "LADIES": {"NextDoor": {"seconds": 0.050}},
        },
    }
    report.update(overrides)
    return report


def autotune_report(**overrides):
    report = {
        "mode": "quick", "objective": "wallclock", "seed": 0,
        "git_sha": "base-sha",
        "results": {
            "DeepWalk/ppi": {"tuned_seconds": 0.20,
                             "default_seconds": 0.40},
            "k-hop/livej": {"tuned_seconds": 0.10,
                            "default_seconds": 0.12},
        },
    }
    report.update(overrides)
    return report


class TestWallclockCompare:
    def test_unmodified_rerun_passes(self):
        base = wallclock_report()
        verdict = compare_wallclock(base, copy.deepcopy(base))
        assert verdict["ok"] and verdict["comparable"]
        assert verdict["regressions"] == []
        assert len(verdict["cells"]) == 3

    def test_twenty_percent_slowdown_is_flagged(self):
        base = wallclock_report()
        slow = copy.deepcopy(base)
        slow["results"]["DeepWalk-100"]["NextDoor"]["seconds"] *= 1.20
        verdict = compare_wallclock(base, slow)
        assert not verdict["ok"]
        assert verdict["regressions"] == ["DeepWalk-100/NextDoor"]
        cell, = [c for c in verdict["cells"] if c["regressed"]]
        assert cell["ratio"] == pytest.approx(1.20)

    def test_slowdown_within_tolerance_passes(self):
        base = wallclock_report()
        slow = copy.deepcopy(base)
        slow["results"]["DeepWalk-100"]["NextDoor"]["seconds"] *= 1.10
        assert compare_wallclock(base, slow)["ok"]

    def test_speedup_never_flags(self):
        base = wallclock_report()
        fast = copy.deepcopy(base)
        for engines in fast["results"].values():
            for cell in engines.values():
                cell["seconds"] *= 0.5
        verdict = compare_wallclock(base, fast)
        assert verdict["ok"]
        assert all(c["ratio"] == pytest.approx(0.5)
                   for c in verdict["cells"])

    def test_noise_floor_skips_tiny_cells(self):
        base = wallclock_report()
        base["results"]["tiny"] = {"NextDoor": {"seconds": 0.001}}
        doubled = copy.deepcopy(base)
        doubled["results"]["tiny"]["NextDoor"]["seconds"] = 0.002
        verdict = compare_wallclock(base, doubled)
        assert verdict["ok"]
        cell, = [c for c in verdict["cells"]
                 if c["name"] == "tiny/NextDoor"]
        assert cell["skipped"] and not cell["regressed"]

    def test_custom_tolerance(self):
        base = wallclock_report()
        slow = copy.deepcopy(base)
        slow["results"]["LADIES"]["NextDoor"]["seconds"] *= 1.10
        assert not compare_wallclock(base, slow, tolerance=0.05)["ok"]

    def test_condition_mismatch_is_incomparable_not_failing(self):
        base = wallclock_report()
        for key, other in (("mode", "full"), ("workers", 4),
                           ("backend", "numba"), ("chunk_size", 256)):
            verdict = compare_wallclock(base,
                                        wallclock_report(**{key: other}))
            assert not verdict["comparable"], key
            assert verdict["ok"], key  # incomparable != regression
            assert key in verdict["incomparable_reasons"][0]
            assert verdict["cells"] == []

    def test_host_mismatch_only_warns(self):
        base = wallclock_report()
        verdict = compare_wallclock(
            base, wallclock_report(platform="other-host", cpu_count=2))
        assert verdict["comparable"] and verdict["ok"]
        assert any("platform" in w for w in verdict["warnings"])
        assert any("cpu_count" in w for w in verdict["warnings"])

    def test_missing_baseline_cell_warns(self):
        base = wallclock_report()
        cur = copy.deepcopy(base)
        cur["results"]["new-workload"] = {"NextDoor": {"seconds": 1.0}}
        verdict = compare_wallclock(base, cur)
        assert verdict["ok"]
        assert any("new-workload" in w for w in verdict["warnings"])


class TestAutotuneCompare:
    def test_tuned_seconds_regression_flagged(self):
        base = autotune_report()
        slow = copy.deepcopy(base)
        slow["results"]["DeepWalk/ppi"]["tuned_seconds"] *= 1.30
        verdict = compare_autotune(base, slow)
        assert not verdict["ok"]
        assert verdict["regressions"] == ["DeepWalk/ppi"]

    def test_default_seconds_slowdown_only_warns(self):
        base = autotune_report()
        cur = copy.deepcopy(base)
        cur["results"]["DeepWalk/ppi"]["default_seconds"] *= 2.0
        verdict = compare_autotune(base, cur)
        assert verdict["ok"]
        assert any("default config slowed" in w
                   for w in verdict["warnings"])

    def test_objective_mismatch_incomparable(self):
        verdict = compare_autotune(autotune_report(),
                                   autotune_report(objective="model"))
        assert not verdict["comparable"] and verdict["ok"]


class TestDispatchAndIO:
    def test_kind_detection(self):
        assert compare_reports(wallclock_report(),
                               wallclock_report())["kind"] == "wallclock"
        assert compare_reports(autotune_report(),
                               autotune_report())["kind"] == "autotune"

    def test_mixed_kinds_rejected(self):
        with pytest.raises(ValueError, match="cannot compare"):
            compare_reports(autotune_report(), wallclock_report())

    def test_load_report_errors(self, tmp_path):
        with pytest.raises(ValueError, match="not found"):
            load_report(str(tmp_path / "missing.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="unreadable"):
            load_report(str(bad))
        noresults = tmp_path / "nores.json"
        noresults.write_text("{}")
        with pytest.raises(ValueError, match="no 'results'"):
            load_report(str(noresults))

    def test_format_verdict_mentions_cells_and_outcome(self):
        base = wallclock_report()
        slow = copy.deepcopy(base)
        slow["results"]["LADIES"]["NextDoor"]["seconds"] *= 2
        text = format_verdict(compare_wallclock(base, slow))
        assert "SLOW" in text and "REGRESSION" in text
        assert "LADIES/NextDoor" in text
        incomparable = format_verdict(
            compare_wallclock(base, wallclock_report(mode="full")))
        assert "INCOMPARABLE" in incomparable

    def test_verdict_is_json_serializable(self):
        json.dumps(compare_wallclock(wallclock_report(),
                                     wallclock_report()))


class TestCli:
    def run_cli(self, argv):
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def _paths(self, tmp_path, slowdown=1.0):
        base = wallclock_report()
        cur = copy.deepcopy(base)
        for engines in cur["results"].values():
            for cell in engines.values():
                cell["seconds"] *= slowdown
        bp = tmp_path / "base.json"
        cp = tmp_path / "cur.json"
        bp.write_text(json.dumps(base))
        cp.write_text(json.dumps(cur))
        return str(bp), str(cp)

    def test_check_pass_exit_zero(self, tmp_path):
        bp, cp = self._paths(tmp_path)
        code, out = self.run_cli(["bench", "check", "--baseline", bp,
                                  "--current", cp])
        assert code == 0 and "PASS" in out

    def test_check_injected_slowdown_exit_one_and_verdict_json(
            self, tmp_path):
        bp, cp = self._paths(tmp_path, slowdown=1.25)
        vp = tmp_path / "verdict.json"
        code, out = self.run_cli(["bench", "check", "--baseline", bp,
                                  "--current", cp, "--out", str(vp)])
        assert code == 1 and "REGRESSION" in out
        verdict = json.loads(vp.read_text())
        assert not verdict["ok"] and len(verdict["regressions"]) == 3

    def test_check_incomparable_exit_zero(self, tmp_path):
        bp, _ = self._paths(tmp_path)
        pooled = wallclock_report(workers=4)
        cp = tmp_path / "pooled.json"
        cp.write_text(json.dumps(pooled))
        code, out = self.run_cli(["bench", "check", "--baseline", bp,
                                  "--current", str(cp)])
        assert code == 0 and "INCOMPARABLE" in out

    def test_check_requires_current_or_run(self, tmp_path):
        bp, cp = self._paths(tmp_path)
        code, out = self.run_cli(["bench", "check", "--baseline", bp])
        assert code == 2 and "--current" in out
        code, out = self.run_cli(["bench", "check", "--baseline", bp,
                                  "--current", cp, "--run", "quick"])
        assert code == 2 and "not both" in out

    def test_check_bad_tolerance(self, tmp_path):
        bp, cp = self._paths(tmp_path)
        code, out = self.run_cli(["bench", "check", "--baseline", bp,
                                  "--current", cp, "--tolerance", "0"])
        assert code == 2 and "--tolerance" in out

    def test_check_missing_baseline_exit_two(self, tmp_path):
        code, out = self.run_cli(
            ["bench", "check",
             "--baseline", str(tmp_path / "nope.json"),
             "--current", str(tmp_path / "nope2.json")])
        assert code == 2 and "not found" in out

    def test_default_tolerance_matches_constant(self):
        assert DEFAULT_TOLERANCE == 0.15

    def test_plain_bench_still_lists(self):
        code, out = self.run_cli(["bench"])
        assert code == 0
        assert "bench_wallclock.py" in out

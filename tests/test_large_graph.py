"""Out-of-GPU-memory sampling (Section 8.4)."""

import numpy as np
import pytest

from repro.api.apps import DeepWalk, KHop
from repro.core.engine import NextDoorEngine
from repro.core.large_graph import LargeGraphNextDoor


def make_engine(**kwargs):
    defaults = {"modeled_graph_bytes": 32 * 1024 ** 3,
                "num_partitions": 8}
    defaults.update(kwargs)
    return LargeGraphNextDoor(**defaults)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            LargeGraphNextDoor(modeled_graph_bytes=0)
        with pytest.raises(ValueError):
            LargeGraphNextDoor(modeled_graph_bytes=1, sample_scale=0.0)
        with pytest.raises(ValueError):
            LargeGraphNextDoor(modeled_graph_bytes=1, sample_scale=2.0)

    def test_fits_in_memory(self):
        assert LargeGraphNextDoor(
            modeled_graph_bytes=1024).fits_in_memory()
        assert not make_engine().fits_in_memory()


class TestExecution:
    def test_transfers_charged(self, medium_graph):
        engine = make_engine()
        r = engine.run(DeepWalk(5), medium_graph, num_samples=32, seed=0)
        assert r.transfer_seconds > 0
        assert "transfer" in r.breakdown

    def test_functionally_identical_to_plain_engine(self, medium_graph):
        """The large-graph mode only adds transfers: same seed, same
        samples."""
        plain = NextDoorEngine().run(DeepWalk(8), medium_graph,
                                     num_samples=32, seed=7)
        large = make_engine().run(DeepWalk(8), medium_graph,
                                  num_samples=32, seed=7)
        assert np.array_equal(plain.get_final_samples(),
                              large.get_final_samples())

    def test_sample_scale_shrinks_transfers(self, medium_graph):
        full = make_engine().run(DeepWalk(5), medium_graph,
                                 num_samples=32, seed=0)
        scaled = make_engine(sample_scale=0.01).run(
            DeepWalk(5), medium_graph, num_samples=32, seed=0)
        assert scaled.transfer_seconds < 0.1 * full.transfer_seconds

    def test_transfer_grows_with_touched_partitions(self, medium_graph):
        # One root touches few partitions; many roots touch most.
        one = make_engine().run(DeepWalk(1), medium_graph,
                                num_samples=1, seed=0)
        many = make_engine().run(DeepWalk(1), medium_graph,
                                 num_samples=500, seed=0)
        assert many.transfer_seconds > one.transfer_seconds

    def test_partition_honours_requested_granularity(self, medium_graph):
        engine = make_engine(num_partitions=12)
        engine.run(DeepWalk(2), medium_graph, num_samples=8, seed=0)
        assert engine._partition.num_parts >= 12

    def test_khop_less_transfer_bound_than_walk(self, medium_graph):
        """k-hop amortises each step's transfer over an exploding
        sampling volume; a long walk re-ships every step."""
        walk = make_engine().run(DeepWalk(50), medium_graph,
                                 num_samples=64, seed=0)
        khop = make_engine().run(KHop((25, 10)), medium_graph,
                                 num_samples=64, seed=0)
        walk_share = walk.transfer_seconds / walk.seconds
        khop_share = khop.transfer_seconds / khop.seconds
        assert walk_share > khop_share

"""Degree-distribution statistics."""

import numpy as np
import pytest

from repro.graph import datasets
from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi_graph, rmat_graph
from repro.graph.stats import (
    degree_stats,
    gini_coefficient,
    power_law_exponent,
)


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient(np.full(100, 5.0)) == pytest.approx(0.0,
                                                                    abs=1e-9)

    def test_concentrated_is_high(self):
        values = np.zeros(100)
        values[0] = 100.0
        assert gini_coefficient(values) > 0.9

    def test_empty(self):
        assert gini_coefficient(np.zeros(0)) == 0.0
        assert gini_coefficient(np.zeros(5)) == 0.0


class TestPowerLaw:
    def test_power_law_sample(self, rng):
        # Draw from P(d) ~ d^-2.5 via inverse transform.
        u = rng.random(20000)
        degrees = np.floor(2 * (1 - u) ** (-1 / 1.5))
        alpha = power_law_exponent(degrees, d_min=2)
        assert 2.2 < alpha < 2.8

    def test_rmat_looks_power_law(self):
        g = rmat_graph(8000, 80000, seed=0)
        alpha = power_law_exponent(g.degrees())
        assert 1.3 < alpha < 4.0

    def test_er_decays_faster_than_rmat(self):
        er = erdos_renyi_graph(8000, 20.0, seed=0)
        rm = rmat_graph(8000, 80000, seed=0)
        assert power_law_exponent(er.degrees()) \
            > power_law_exponent(rm.degrees())

    def test_degenerate(self):
        assert power_law_exponent(np.array([1.0])) == float("inf")


class TestDegreeStats:
    def test_fields(self, medium_graph):
        stats = degree_stats(medium_graph)
        assert stats.mean == pytest.approx(medium_graph.avg_degree)
        assert stats.maximum >= stats.p99 >= stats.median
        assert 0.0 <= stats.isolated_fraction <= 1.0
        assert set(stats.as_dict()) == {
            "mean", "median", "p99", "max", "gini", "power_law_alpha",
            "isolated_fraction"}

    def test_empty_graph(self):
        g = CSRGraph(np.array([0]), np.array([], dtype=np.int64))
        stats = degree_stats(g)
        assert stats.mean == 0.0

    def test_stand_ins_are_hubby(self):
        """Every Table-3 stand-in must show social-graph hub
        concentration — the property transit-parallelism exploits."""
        for name in ("ppi", "orkut", "livej"):
            g = datasets.load(name, seed=0)
            stats = degree_stats(g)
            assert stats.gini > 0.3, name
            assert stats.maximum > 5 * stats.mean, name

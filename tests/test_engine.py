"""NextDoorEngine: the step loop, outputs, determinism, multi-GPU."""

import numpy as np
import pytest

from repro.api.apps import DeepWalk, KHop, Layer, MultiRW, PPR
from repro.api.types import NULL_VERTEX
from repro.core.engine import NextDoorEngine, do_sampling


class TestRunBasics:
    def test_deterministic_given_seed(self, medium_graph):
        a = NextDoorEngine().run(DeepWalk(10), medium_graph,
                                 num_samples=64, seed=5)
        b = NextDoorEngine().run(DeepWalk(10), medium_graph,
                                 num_samples=64, seed=5)
        assert np.array_equal(a.get_final_samples(),
                              b.get_final_samples())

    def test_seed_changes_samples(self, medium_graph):
        a = NextDoorEngine().run(DeepWalk(10), medium_graph,
                                 num_samples=64, seed=5)
        b = NextDoorEngine().run(DeepWalk(10), medium_graph,
                                 num_samples=64, seed=6)
        assert not np.array_equal(a.get_final_samples(),
                                  b.get_final_samples())

    def test_explicit_roots(self, medium_graph):
        roots = np.arange(10, dtype=np.int64)[:, None]
        result = NextDoorEngine().run(DeepWalk(5), medium_graph,
                                      roots=roots, seed=0)
        assert np.array_equal(result.batch.roots, roots)

    def test_missing_samples_and_roots_rejected(self, medium_graph):
        with pytest.raises(ValueError):
            NextDoorEngine().run(DeepWalk(5), medium_graph)

    def test_num_devices_validation(self, medium_graph):
        with pytest.raises(ValueError):
            NextDoorEngine().run(DeepWalk(5), medium_graph,
                                 num_samples=8, num_devices=0)

    def test_do_sampling_convenience(self, medium_graph):
        result = do_sampling(DeepWalk(5), medium_graph, 16, seed=1)
        assert result.get_final_samples().shape == (16, 5)


class TestResult:
    def test_breakdown_has_both_phases(self, medium_graph):
        r = NextDoorEngine().run(DeepWalk(5), medium_graph,
                                 num_samples=64, seed=0)
        assert r.sampling_seconds > 0
        assert r.scheduling_index_seconds > 0
        assert r.seconds == pytest.approx(sum(r.breakdown.values()))

    def test_metrics_present(self, medium_graph):
        r = NextDoorEngine().run(DeepWalk(5), medium_graph,
                                 num_samples=64, seed=0)
        assert r.metrics.counters.global_load_transactions > 0
        assert "sampling" in r.metrics_by_phase

    def test_samples_per_second(self, medium_graph):
        r = NextDoorEngine().run(DeepWalk(5), medium_graph,
                                 num_samples=64, seed=0)
        assert r.samples_per_second == pytest.approx(64 / r.seconds)

    def test_speedup_over(self, medium_graph):
        a = NextDoorEngine().run(DeepWalk(5), medium_graph,
                                 num_samples=64, seed=0)
        b = NextDoorEngine().run(DeepWalk(10), medium_graph,
                                 num_samples=64, seed=0)
        assert b.speedup_over(a) == pytest.approx(a.seconds / b.seconds)

    def test_steps_run(self, medium_graph):
        r = NextDoorEngine().run(DeepWalk(7), medium_graph,
                                 num_samples=32, seed=0)
        assert r.steps_run == 7


class TestTermination:
    def test_inf_app_stops_when_all_dead(self, medium_graph):
        r = NextDoorEngine().run(PPR(termination_prob=0.5, max_steps=500),
                                 medium_graph, num_samples=32, seed=0)
        assert r.steps_run < 100

    def test_fixed_app_stops_early_if_walks_die(self):
        from repro.graph.csr import CSRGraph
        # A sink-heavy directed graph: 0 -> 1, and 1 has no out-edges.
        g = CSRGraph.from_edges(3, [(0, 1)])
        r = NextDoorEngine().run(DeepWalk(50), g,
                                 roots=np.zeros((4, 1), dtype=np.int64),
                                 seed=0)
        assert r.steps_run <= 2


class TestReferencePath:
    def test_reference_engine_agrees_statistically(self, tiny_graph):
        """The per-vertex reference path and the vectorised path
        produce the same marginal next-vertex distribution."""
        fast = NextDoorEngine().run(
            DeepWalk(1), tiny_graph,
            roots=np.zeros((3000, 1), dtype=np.int64), seed=0)
        ref = NextDoorEngine(use_reference=True).run(
            DeepWalk(1), tiny_graph,
            roots=np.zeros((3000, 1), dtype=np.int64), seed=0)
        for v in tiny_graph.neighbors(0):
            f = (fast.get_final_samples() == v).mean()
            g = (ref.get_final_samples() == v).mean()
            assert abs(f - g) < 0.05

    def test_reference_khop(self, tiny_graph):
        r = NextDoorEngine(use_reference=True).run(
            KHop((3, 2)), tiny_graph, num_samples=8, seed=0)
        hops = r.get_final_samples()
        assert hops[0].shape == (8, 3)
        assert hops[1].shape == (8, 6)


class TestMultiGPUEngine:
    def test_same_sample_count(self, medium_graph):
        r = NextDoorEngine().run(DeepWalk(5), medium_graph,
                                 num_samples=64, seed=0, num_devices=4)
        assert r.batch.num_samples == 64
        assert r.devices_used == 4

    def test_merged_walks_are_paths(self, medium_graph):
        r = NextDoorEngine().run(DeepWalk(5), medium_graph,
                                 num_samples=32, seed=0, num_devices=2)
        walks = r.get_final_samples()
        roots = r.batch.roots
        for s in range(32):
            prev = int(roots[s, 0])
            for v in walks[s]:
                if v == NULL_VERTEX:
                    break
                assert medium_graph.has_edge(prev, int(v))
                prev = int(v)

    def test_variable_width_merge(self, medium_graph):
        # PPR shards can run different step counts; merge pads.
        r = NextDoorEngine().run(PPR(termination_prob=0.3, max_steps=100),
                                 medium_graph, num_samples=40, seed=0,
                                 num_devices=4)
        assert r.batch.num_samples == 40

    def test_multi_gpu_metrics_merged(self, medium_graph):
        r = NextDoorEngine().run(DeepWalk(5), medium_graph,
                                 num_samples=64, seed=0, num_devices=2)
        assert r.metrics.counters.global_load_transactions > 0
        assert r.breakdown.get("coordination", 0) > 0

    def test_multi_gpu_edge_sample_ids_shifted(self, medium_graph):
        from repro.api.apps import FastGCN
        r = NextDoorEngine().run(FastGCN(step_size=8, batch_size=4),
                                 medium_graph, num_samples=8, seed=0,
                                 num_devices=2)
        all_edges = np.concatenate(r.batch.edges, axis=0) \
            if r.batch.edges else np.zeros((0, 3))
        if all_edges.size:
            assert all_edges[:, 0].max() < 8


class TestUniqueTopUp:
    def test_rows_unique_after_step(self, star_graph):
        r = NextDoorEngine().run(
            KHop((20,), unique_per_step=True), star_graph,
            roots=np.zeros((16, 1), dtype=np.int64), seed=0)
        hop = r.get_final_samples()[0]
        for row in hop:
            live = row[row != NULL_VERTEX]
            assert np.unique(live).size == live.size

    def test_top_up_refills_holes(self, star_graph):
        """With 32 leaves and fanout 20, dedup + one top-up pass leaves
        most rows close to full."""
        r = NextDoorEngine().run(
            KHop((20,), unique_per_step=True), star_graph,
            roots=np.zeros((16, 1), dtype=np.int64), seed=0)
        hop = r.get_final_samples()[0]
        fill = (hop != NULL_VERTEX).mean()
        # Without the top-up, expected distinct of 20-of-32 draws is
        # ~15.2/20 = 76%; the refill pushes clearly above that.
        assert fill > 0.8

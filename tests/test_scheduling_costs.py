"""Kernel cost planner: the Table 2 mechanisms must be load-bearing."""

import numpy as np
import pytest

from repro.api.types import StepInfo
from repro.core.scheduling import KernelPlanConfig, charge_sampling_kernels
from repro.core.transit_map import build_transit_map, charge_index_build
from repro.gpu.device import Device


def charge(counts, degrees, m=1, config=KernelPlanConfig(),
           info=StepInfo(), weighted=False):
    """Charge a synthetic step: transit i appears counts[i] times."""
    transits = np.concatenate([
        np.full(c, i, dtype=np.int64) for i, c in enumerate(counts)])
    tmap = build_transit_map(transits[:, None])
    device = Device()
    charge_sampling_kernels(device, tmap, np.asarray(degrees, dtype=np.int64),
                            m, info, config, weighted=weighted)
    return device


class TestKernelClasses:
    def test_subwarp_only_launch(self):
        d = charge(counts=[2, 3], degrees=[4, 4], m=1)
        names = [e.name for e in d.timeline.entries]
        assert names == ["transit_sampling_kernels"]

    def test_empty_step_charges_nothing(self):
        device = Device()
        tmap = build_transit_map(np.full((2, 1), -1))
        charge_sampling_kernels(device, tmap, np.zeros(0, dtype=np.int64),
                                1, StepInfo())
        assert device.elapsed_seconds == 0.0

    def test_m_zero_charges_nothing(self):
        d = charge(counts=[5], degrees=[4], m=0)
        assert d.elapsed_seconds == 0.0


class TestMechanisms:
    def test_caching_reduces_global_loads(self):
        hot = [200] * 8  # block-class transits
        degs = [64] * 8
        cached = charge(hot, degs, config=KernelPlanConfig())
        uncached = charge(hot, degs,
                          config=KernelPlanConfig(enable_caching=False))
        assert (uncached.metrics.counters.global_load_transactions
                > 2 * cached.metrics.counters.global_load_transactions)

    def test_load_balancing_beats_vanilla_on_skew(self):
        # One scorching transit + many cold ones.
        counts = [5000] + [1] * 200
        degs = [500] + [8] * 200
        balanced = charge(counts, degs, m=1)
        vanilla = charge(counts, degs, m=1,
                         config=KernelPlanConfig(
                             enable_load_balancing=False))
        assert vanilla.elapsed_seconds > balanced.elapsed_seconds

    def test_subwarp_sharing_keeps_stores_efficient(self):
        counts = [1] * 100
        degs = [8] * 100
        shared = charge(counts, degs, m=1)
        solo = charge(counts, degs, m=1,
                      config=KernelPlanConfig(
                          enable_subwarp_sharing=False))
        assert shared.metrics.counters.store_efficiency \
            >= solo.metrics.counters.store_efficiency

    def test_weighted_doubles_adjacency_traffic(self):
        counts = [200] * 8
        degs = [64] * 8
        plain = charge(counts, degs)
        weighted = charge(counts, degs, weighted=True)
        assert (weighted.metrics.counters.global_load_transactions
                > 1.5 * plain.metrics.counters.global_load_transactions)

    def test_divergent_info_costs_cycles(self):
        calm = charge([100] * 4, [32] * 4, info=StepInfo())
        stormy = charge([100] * 4, [32] * 4,
                        info=StepInfo(divergence_fraction=1.0,
                                      divergence_cycles=100.0))
        assert stormy.elapsed_seconds > calm.elapsed_seconds
        assert stormy.metrics.counters.divergent_branches > 0

    def test_extra_reads_scatter(self):
        without = charge([100] * 4, [32] * 4)
        with_probes = charge([100] * 4, [32] * 4,
                             info=StepInfo(
                                 extra_global_reads_per_vertex=3.0))
        assert (with_probes.metrics.counters.global_load_transactions
                > without.metrics.counters.global_load_transactions)


class TestIndexBuild:
    def test_cost_scales_with_pairs(self):
        small = Device()
        charge_index_build(small, 1000)
        large = Device()
        charge_index_build(large, 1_000_000)
        assert large.elapsed_seconds > 10 * small.elapsed_seconds

    def test_zero_pairs_free(self):
        d = Device()
        charge_index_build(d, 0)
        assert d.elapsed_seconds == 0.0

    def test_charged_to_index_phase(self):
        d = Device()
        charge_index_build(d, 1000)
        assert d.timeline.total_seconds(phase="scheduling_index") > 0
        assert d.timeline.total_seconds(phase="sampling") == 0

"""Bitwise equivalence of the vectorised hot paths vs their references.

The PR that introduced the counting-sort scheduling index, the ragged
collective gather, and the batched selection/top-up paths promised
*bitwise-identical* samples under a fixed seed.  These tests hold that
line: each reference implementation (the original per-row / per-draw
code) is either kept in the source tree (``build_transit_map_reference``)
or reproduced verbatim here, monkeypatched in, and the resulting
``SampleBatch`` compared array-for-array against the fast path.
"""

import numpy as np
import pytest

import repro.core.engine as engine_mod
import repro.core.stepper as stepper_mod
from repro.api.apps import DeepWalk, KHop, LADIES
from repro.api.apps import deepwalk as deepwalk_mod
from repro.api.apps.importance import FastGCN
from repro.api.types import NULL_VERTEX, StepInfo
from repro.core.engine import NextDoorEngine
from repro.core.transit_map import (
    build_transit_map,
    build_transit_map_reference,
)

# ---------------------------------------------------------------------------
# Reference implementations (the pre-vectorisation code, verbatim).
# ---------------------------------------------------------------------------


def _reference_weighted_neighbors(graph, transits, m, rng):
    from repro.api.apps._kernels import uniform_neighbors
    if not graph.is_weighted:
        return uniform_neighbors(graph, transits, m, rng)
    transits = np.asarray(transits, dtype=np.int64)
    out = np.full((transits.size, m), NULL_VERTEX, dtype=np.int64)
    live = transits != NULL_VERTEX
    if not live.any() or m == 0:
        return out
    t = transits[live]
    starts = graph.indptr[t]
    ends = graph.indptr[t + 1]
    deg = ends - starts
    has_nbrs = deg > 0
    if not has_nbrs.any():
        return out
    starts = starts[has_nbrs]
    ends = ends[has_nbrs]
    t = t[has_nbrs]
    cumsum = graph.global_weight_cumsum()
    base = np.where(starts > 0, cumsum[starts - 1], 0.0)
    totals = cumsum[ends - 1] - base
    live_idx = np.nonzero(live)[0][has_nbrs]
    for j in range(m):
        target = base + rng.random(size=t.size) * totals
        pos = np.searchsorted(cumsum, target, side="right")
        pos = np.clip(pos, starts, ends - 1)
        out[live_idx, j] = graph.indices[pos]
    return out


def _reference_combined_neighborhood(graph, transits):
    transits = np.asarray(transits, dtype=np.int64)
    num_samples = transits.shape[0]
    flat = transits.ravel()
    live = flat != NULL_VERTEX
    deg = np.zeros(flat.size, dtype=np.int64)
    deg[live] = graph.indptr[flat[live] + 1] - graph.indptr[flat[live]]
    per_sample = deg.reshape(num_samples, -1).sum(axis=1)
    offsets = np.zeros(num_samples + 1, dtype=np.int64)
    np.cumsum(per_sample, out=offsets[1:])
    values = np.empty(int(offsets[-1]), dtype=np.int64)
    cursor = offsets[:-1].copy()
    for c in range(transits.shape[1]):
        col = transits[:, c]
        for s in np.nonzero(col != NULL_VERTEX)[0]:
            v = col[s]
            row = graph.indices[graph.indptr[v]:graph.indptr[v + 1]]
            values[cursor[s]:cursor[s] + row.size] = row
            cursor[s] += row.size
    return values, offsets


def _reference_ladies_selection(self, graph, batch, neigh_values,
                                sample_offsets, transits, step, rng):
    out = np.full((batch.num_samples, self.step_size), NULL_VERTEX,
                  dtype=np.int64)
    degrees = graph.degrees()
    for s in range(batch.num_samples):
        lo, hi = int(sample_offsets[s]), int(sample_offsets[s + 1])
        candidates = neigh_values[lo:hi]
        if candidates.size == 0:
            continue
        weights = degrees[candidates].astype(np.float64) + 1.0
        cdf = np.cumsum(weights)
        draws = rng.random(self.step_size) * cdf[-1]
        picks = np.searchsorted(cdf, draws)
        picks = np.minimum(picks, candidates.size - 1)
        out[s] = candidates[picks]
    return out, StepInfo(avg_compute_cycles=14.0)


def _reference_record_step_edges(self, graph, batch, transits,
                                 new_vertices, step):
    num_samples = transits.shape[0]
    t_width = transits.shape[1]
    v_width = new_vertices.shape[1]
    t_rep = np.repeat(transits, v_width, axis=1).ravel()
    v_rep = np.tile(new_vertices, (1, t_width)).ravel()
    s_rep = np.repeat(np.arange(num_samples), t_width * v_width)
    live = (t_rep != NULL_VERTEX) & (v_rep != NULL_VERTEX)
    t_rep, v_rep, s_rep = t_rep[live], v_rep[live], s_rep[live]
    if t_rep.size == 0:
        return np.zeros((0, 3), dtype=np.int64)
    exists = graph.has_edges(t_rep, v_rep)
    return np.stack([s_rep[exists], t_rep[exists], v_rep[exists]], axis=1)


def _reference_make_unique(self, app, graph, batch, transits, new_vertices,
                           step, rng, device):
    from repro.api.apps._kernels import uniform_neighbors
    from repro.core.unique import charge_dedup, dedupe_rows
    deduped, num_dups = dedupe_rows(new_vertices)
    charge_dedup(device, batch.num_samples, new_vertices.shape[1])
    if num_dups == 0:
        return deduped
    m = max(app.sample_size(step), 1)
    rows_with_holes = np.nonzero(
        (deduped == NULL_VERTEX).any(axis=1)
        & (new_vertices != NULL_VERTEX).any(axis=1))[0]
    for s in rows_with_holes:
        row = deduped[s]
        holes = np.nonzero((row == NULL_VERTEX)
                           & (new_vertices[s] != NULL_VERTEX))[0]
        if holes.size == 0:
            continue
        hole_transits = transits[s][holes // m]
        draws = uniform_neighbors(graph, hole_transits, 1, rng)[:, 0]
        present = set(int(v) for v in row[row != NULL_VERTEX])
        for hole, draw in zip(holes, draws):
            if draw != NULL_VERTEX and int(draw) not in present:
                row[hole] = draw
                present.add(int(draw))
    engine_mod.charge_collective_selection(
        device, int(rows_with_holes.size), 1, info=engine_mod._TOPUP_INFO)
    return deduped


def _patch_reference_paths(monkeypatch):
    """Swap every vectorised hot path for its original implementation."""
    monkeypatch.setattr(engine_mod, "build_transit_map",
                        build_transit_map_reference)
    monkeypatch.setattr(deepwalk_mod, "weighted_neighbors",
                        _reference_weighted_neighbors)
    monkeypatch.setattr(stepper_mod, "build_combined_neighborhood",
                        _reference_combined_neighborhood)
    monkeypatch.setattr(LADIES, "sample_from_neighborhood",
                        _reference_ladies_selection)
    # The reference selection reads the materialised candidate array
    # the fast path no longer needs.
    monkeypatch.setattr(LADIES, "needs_combined_values", True)
    monkeypatch.setattr(FastGCN, "record_step_edges",
                        _reference_record_step_edges)
    monkeypatch.setattr(NextDoorEngine, "_make_unique",
                        _reference_make_unique)


def _run(app_factory, graph, n, seed=13):
    result = NextDoorEngine().run(app_factory(), graph, num_samples=n,
                                  seed=seed)
    return result.batch


def _assert_batches_identical(a, b):
    assert np.array_equal(a.roots, b.roots)
    assert len(a.step_vertices) == len(b.step_vertices)
    for i, (x, y) in enumerate(zip(a.step_vertices, b.step_vertices)):
        assert np.array_equal(x, y), f"step {i} differs"
    assert len(a.edges) == len(b.edges)
    for i, (x, y) in enumerate(zip(a.edges, b.edges)):
        assert np.array_equal(x, y), f"edges {i} differ"


# ---------------------------------------------------------------------------
# End-to-end bitwise identity: fast path vs reference path, fixed seed.
# ---------------------------------------------------------------------------


class TestBitwiseIdentity:
    def test_walk_app(self, medium_weighted, monkeypatch):
        fast = _run(lambda: DeepWalk(walk_length=15), medium_weighted, 200)
        _patch_reference_paths(monkeypatch)
        ref = _run(lambda: DeepWalk(walk_length=15), medium_weighted, 200)
        _assert_batches_identical(fast, ref)

    def test_khop_app(self, medium_graph, monkeypatch):
        factory = lambda: KHop(fanouts=(6, 4), unique_per_step=True)
        fast = _run(factory, medium_graph, 150)
        _patch_reference_paths(monkeypatch)
        ref = _run(factory, medium_graph, 150)
        _assert_batches_identical(fast, ref)

    def test_collective_app(self, medium_graph, monkeypatch):
        factory = lambda: LADIES(step_size=16, batch_size=16)
        fast = _run(factory, medium_graph, 50)
        _patch_reference_paths(monkeypatch)
        ref = _run(factory, medium_graph, 50)
        _assert_batches_identical(fast, ref)


# ---------------------------------------------------------------------------
# TransitMap: fast grouping vs reference grouping, plus invariants.
# ---------------------------------------------------------------------------


def _random_transits(rng, num_vertices, shape, null_frac=0.2):
    t = rng.integers(0, num_vertices, size=shape)
    t[rng.random(size=shape) < null_frac] = NULL_VERTEX
    return t


class TestTransitMapEquivalence:
    @pytest.mark.parametrize("shape", [(1, 1), (64, 1), (50, 4), (7, 33)])
    def test_matches_reference(self, rng, shape):
        transits = _random_transits(rng, 5000, shape)
        fast = build_transit_map(transits)
        ref = build_transit_map_reference(transits)
        for field in ("sample_ids", "cols", "transit_vals",
                      "unique_transits", "counts", "offsets"):
            assert np.array_equal(getattr(fast, field), getattr(ref, field)), field
        assert fast.num_total_pairs == ref.num_total_pairs

    def test_matches_reference_wide_id_range(self, rng):
        # Spans > 16 bits exercise the wider counting-sort key dtypes.
        transits = rng.integers(0, 2**21, size=(300, 3))
        fast = build_transit_map(transits)
        ref = build_transit_map_reference(transits)
        assert np.array_equal(fast.transit_vals, ref.transit_vals)
        assert np.array_equal(fast.sample_ids, ref.sample_ids)
        assert np.array_equal(fast.offsets, ref.offsets)

    def test_all_null(self):
        tmap = build_transit_map(np.full((4, 3), NULL_VERTEX))
        assert tmap.num_pairs == 0
        assert tmap.num_transits == 0
        assert list(tmap.offsets) == [0]
        assert tmap.num_total_pairs == 12


class TestTransitMapProperties:
    @pytest.fixture
    def tmap_and_transits(self, rng):
        transits = _random_transits(rng, 800, (400, 5))
        return build_transit_map(transits), transits

    def test_transit_vals_sorted(self, tmap_and_transits):
        tmap, _ = tmap_and_transits
        assert (np.diff(tmap.transit_vals) >= 0).all()

    def test_offsets_consistent(self, tmap_and_transits):
        tmap, _ = tmap_and_transits
        assert tmap.offsets[0] == 0
        assert tmap.offsets[-1] == tmap.num_pairs
        assert np.array_equal(np.diff(tmap.offsets), tmap.counts)
        assert (np.diff(tmap.unique_transits) > 0).all()

    def test_groups_hold_their_transit(self, tmap_and_transits):
        tmap, _ = tmap_and_transits
        assert np.array_equal(
            np.repeat(tmap.unique_transits, tmap.counts), tmap.transit_vals)

    def test_stable_within_transit(self, tmap_and_transits):
        """Pairs of one transit keep their flattened (sample, col)
        order — the stability the rng-stream identity relies on."""
        tmap, transits = tmap_and_transits
        width = transits.shape[1]
        flat_pos = tmap.sample_ids * width + tmap.cols
        for i in range(tmap.num_transits):
            grp = flat_pos[tmap.pairs_of(i)]
            assert (np.diff(grp) > 0).all()

    def test_roundtrip_scatter(self, tmap_and_transits):
        tmap, transits = tmap_and_transits
        rebuilt = np.full(transits.shape, NULL_VERTEX, dtype=np.int64)
        rebuilt[tmap.sample_ids, tmap.cols] = tmap.transit_vals
        assert np.array_equal(rebuilt, transits)

"""Checkpoint/resume (repro.runtime.checkpoint).

The acceptance criterion under test: a run interrupted partway and
resumed with ``--resume`` reproduces the uninterrupted run's samples
hash-for-hash, and mismatched state (different seed, graph, app, chunk
layout) can never be replayed into the wrong run.
"""

import numpy as np
import pytest

from repro.api.apps import DeepWalk, KHop
from repro.api.types import StepInfo
from repro.core.engine import NextDoorEngine
from repro.obs import get_metrics
from repro.runtime.checkpoint import (
    CheckpointStore,
    graph_digest,
    run_fingerprint,
)
from repro.runtime.faults import FaultInjected, PLAN_ENV
from repro.runtime.rngplan import RNGPlan

CHUNK = 64


def _run(graph, ckpt=None, resume=False, workers=0, seed=11):
    engine = NextDoorEngine(workers=workers, chunk_size=CHUNK,
                            checkpoint_dir=ckpt, resume=resume)
    return engine.run(DeepWalk(walk_length=12), graph,
                      num_samples=256, seed=seed)


class TestStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "fp0", resume=True)
        data = np.arange(12, dtype=np.int64).reshape(3, 4)
        info = StepInfo(avg_compute_cycles=42.0)
        store.save("i", (0,), 2, 5, data, info)
        loaded = store.load("i", (0,), 2, 5)
        assert loaded is not None
        got_data, got_info = loaded
        assert np.array_equal(got_data, data)
        assert got_info.avg_compute_cycles == 42.0

    def test_missing_chunk_is_cache_miss(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "fp0", resume=True)
        assert store.load("i", (), 0, 0) is None

    def test_corrupt_file_is_cache_miss(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "fp0", resume=True)
        data = np.arange(4, dtype=np.int64)
        store.save("c", (), 1, 3, data, StepInfo())
        path = store._path("c", (), 1, 3)
        with open(path, "wb") as fh:
            fh.write(b"not an npz file")
        assert store.load("c", (), 1, 3) is None

    def test_namespaces_do_not_collide(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "fp0", resume=True)
        store.save("i", (0,), 0, 0, np.array([1]), StepInfo())
        store.save("i", (1,), 0, 0, np.array([2]), StepInfo())
        a, _ = store.load("i", (0,), 0, 0)
        b, _ = store.load("i", (1,), 0, 0)
        assert a[0] == 1 and b[0] == 2


class TestFingerprint:
    def test_sensitive_to_every_input(self, medium_weighted,
                                      medium_graph):
        plan = RNGPlan(11, chunk_pairs=CHUNK)
        roots = np.arange(8, dtype=np.int64).reshape(8, 1)
        base = run_fingerprint(DeepWalk(walk_length=12),
                               medium_weighted, 11, plan, roots, False)
        variants = [
            run_fingerprint(DeepWalk(walk_length=13), medium_weighted,
                            11, plan, roots, False),
            run_fingerprint(KHop(fanouts=(4,)), medium_weighted, 11,
                            plan, roots, False),
            run_fingerprint(DeepWalk(walk_length=12), medium_graph, 11,
                            plan, roots, False),
            run_fingerprint(DeepWalk(walk_length=12), medium_weighted,
                            12, plan, roots, False),
            run_fingerprint(DeepWalk(walk_length=12), medium_weighted,
                            11, RNGPlan(11, chunk_pairs=32), roots,
                            False),
            run_fingerprint(DeepWalk(walk_length=12), medium_weighted,
                            11, plan, roots[:4], False),
            run_fingerprint(DeepWalk(walk_length=12), medium_weighted,
                            11, plan, roots, True),
        ]
        assert len({base, *variants}) == len(variants) + 1

    def test_unpicklable_app_still_fingerprints(self, medium_weighted):
        app = DeepWalk(walk_length=4)
        app.hook = lambda: None  # closures don't pickle
        plan = RNGPlan(0, chunk_pairs=CHUNK)
        roots = np.zeros((2, 1), dtype=np.int64)
        fp = run_fingerprint(app, medium_weighted, 0, plan, roots, False)
        assert len(fp) == 32

    def test_graph_digest_cached_and_content_keyed(self, medium_weighted,
                                                   medium_graph):
        d1 = graph_digest(medium_weighted)
        assert graph_digest(medium_weighted) == d1  # cached
        assert graph_digest(medium_graph) != d1


class TestResume:
    def test_interrupted_run_resumes_bitwise_identically(
            self, medium_weighted, tmp_path, monkeypatch):
        expected = _run(medium_weighted)
        ckpt = str(tmp_path / "ckpt")

        monkeypatch.setenv(PLAN_ENV, "interrupt-step:2")
        with pytest.raises(FaultInjected, match="step 2"):
            _run(medium_weighted, ckpt=ckpt)
        monkeypatch.delenv(PLAN_ENV)

        loaded = get_metrics().counter("checkpoint.chunks_loaded")
        before = loaded.value
        resumed = _run(medium_weighted, ckpt=ckpt, resume=True)
        assert loaded.value > before
        assert np.array_equal(expected.batch.roots, resumed.batch.roots)
        for a, b in zip(expected.batch.step_vertices,
                        resumed.batch.step_vertices):
            assert np.array_equal(a, b)
        assert expected.seconds == resumed.seconds

    def test_resume_ignores_other_runs_state(self, medium_weighted,
                                             tmp_path):
        """A checkpoint written under seed 11 must not leak into a
        seed-12 resume: different fingerprint, different directory."""
        ckpt = str(tmp_path / "ckpt")
        _run(medium_weighted, ckpt=ckpt, seed=11)
        loaded = get_metrics().counter("checkpoint.chunks_loaded")
        before = loaded.value
        other = _run(medium_weighted, ckpt=ckpt, resume=True, seed=12)
        assert loaded.value == before  # nothing reused
        clean = _run(medium_weighted, seed=12)
        for a, b in zip(clean.batch.step_vertices,
                        other.batch.step_vertices):
            assert np.array_equal(a, b)

    def test_checkpoint_without_resume_never_loads(self, medium_weighted,
                                                   tmp_path):
        ckpt = str(tmp_path / "ckpt")
        _run(medium_weighted, ckpt=ckpt)
        loaded = get_metrics().counter("checkpoint.chunks_loaded")
        before = loaded.value
        again = _run(medium_weighted, ckpt=ckpt)  # resume=False
        assert loaded.value == before
        expected = _run(medium_weighted)
        for a, b in zip(expected.batch.step_vertices,
                        again.batch.step_vertices):
            assert np.array_equal(a, b)

    def test_resume_after_pooled_kill_recomputes_only_lost(
            self, medium_weighted, tmp_path, monkeypatch):
        """The full fault x checkpoint matrix cell: a pooled run loses
        a worker (respawn heals it), checkpoints survive, the run is
        then interrupted; the resume reloads every persisted chunk,
        recomputes exactly the lost remainder, and assembles the
        uninterrupted run's bits."""
        expected = _run(medium_weighted)
        # Total chunks of this workload, measured on a clean
        # checkpointed run (every chunk saved exactly once).
        saved = get_metrics().counter("checkpoint.chunks_saved")
        before = saved.value
        _run(medium_weighted, ckpt=str(tmp_path / "count"))
        total_chunks = saved.value - before

        ckpt = str(tmp_path / "ckpt")
        monkeypatch.setenv(PLAN_ENV,
                           "kill-after-chunk:0.1,interrupt-step:2")
        before = saved.value
        with pytest.raises(FaultInjected, match="step 2"):
            _run(medium_weighted, ckpt=ckpt, workers=2)
        monkeypatch.delenv(PLAN_ENV)
        persisted = saved.value - before
        assert 0 < persisted < total_chunks

        loaded = get_metrics().counter("checkpoint.chunks_loaded")
        computed = get_metrics().counter("runtime.chunks_inprocess")
        before_loaded, before_computed = loaded.value, computed.value
        resumed = _run(medium_weighted, ckpt=ckpt, resume=True)
        reloaded = loaded.value - before_loaded
        recomputed = computed.value - before_computed
        assert reloaded == persisted  # everything saved was reused
        assert recomputed == total_chunks - persisted  # only the rest
        assert np.array_equal(expected.batch.roots, resumed.batch.roots)
        for a, b in zip(expected.batch.step_vertices,
                        resumed.batch.step_vertices):
            assert np.array_equal(a, b)
        assert expected.seconds == resumed.seconds

    def test_resume_after_deadline_cancellation(self, medium_weighted,
                                                tmp_path):
        """A serve-style deadline cancellation discards the run but not
        its checkpoints: the resume reloads them and finishes
        bitwise-identically."""
        from repro.runtime.cancel import CancelledRun, CancelScope
        expected = _run(medium_weighted)
        ckpt = str(tmp_path / "ckpt")
        engine = NextDoorEngine(workers=0, chunk_size=CHUNK,
                                checkpoint_dir=ckpt)
        # 5 checks per step here (1 at the step head + 4 chunks):
        # tripping on check 13 cancels mid-step-2, after steps 0-1
        # were checkpointed and step 2's partial chunks are discarded.
        engine.cancel = CancelScope(trip_after_checks=13)
        with pytest.raises(CancelledRun):
            engine.run(DeepWalk(walk_length=12), medium_weighted,
                       num_samples=256, seed=11)
        loaded = get_metrics().counter("checkpoint.chunks_loaded")
        before = loaded.value
        resumed = _run(medium_weighted, ckpt=ckpt, resume=True)
        assert loaded.value > before
        for a, b in zip(expected.batch.step_vertices,
                        resumed.batch.step_vertices):
            assert np.array_equal(a, b)
        assert expected.seconds == resumed.seconds

    def test_resumed_pooled_run_matches(self, medium_weighted, tmp_path,
                                        monkeypatch):
        """Interrupt an in-process checkpoint run, resume on the worker
        pool: restored chunks + pooled chunks still assemble the exact
        batch."""
        expected = _run(medium_weighted)
        ckpt = str(tmp_path / "ckpt")
        monkeypatch.setenv(PLAN_ENV, "interrupt-step:1")
        with pytest.raises(FaultInjected):
            _run(medium_weighted, ckpt=ckpt)
        monkeypatch.delenv(PLAN_ENV)
        resumed = _run(medium_weighted, ckpt=ckpt, resume=True,
                       workers=2)
        for a, b in zip(expected.batch.step_vertices,
                        resumed.batch.step_vertices):
            assert np.array_equal(a, b)

"""Autotuner: TuneConfig semantics, the database, the search, the CLI."""

import io
import json
import os

import numpy as np
import pytest

from repro.api import apps
from repro.cli import main
from repro.core.engine import NextDoorEngine
from repro.core.scheduling import KernelPlanConfig
from repro.graph.generators import rmat_graph
from repro.tune import (
    DB_ENV,
    DEFAULT_TUNE,
    TuneConfig,
    TuneDB,
    graph_fingerprint,
)
from repro.tune.search import autotune


@pytest.fixture()
def graph():
    return rmat_graph(400, 2400, seed=19, name="tune-test-rmat")


class TestTuneConfig:
    def test_defaults_are_default(self):
        assert DEFAULT_TUNE.is_default
        assert DEFAULT_TUNE.describe() == "default"

    def test_describe_lists_non_defaults(self):
        cfg = TuneConfig(backend="cnative", chunk_size=1024)
        assert "backend=cnative" in cfg.describe()
        assert "chunk_size=1024" in cfg.describe()
        assert "subwarp_limit" not in cfg.describe()

    def test_dict_round_trip(self):
        cfg = TuneConfig(backend="numpy", chunk_size=256, inflight=2,
                         subwarp_limit=16, block_limit=512,
                         relabel="degree")
        assert TuneConfig.from_dict(cfg.to_dict()) == cfg

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown TuneConfig"):
            TuneConfig.from_dict({"warp_size": 64})

    @pytest.mark.parametrize("kwargs", [
        {"chunk_size": 0}, {"chunk_size": -5}, {"inflight": 0},
        {"subwarp_limit": 0}, {"subwarp_limit": 64, "block_limit": 32},
        {"backend": "cuda"}, {"relabel": "random"},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TuneConfig(**kwargs)

    def test_apply_to_plan_preserves_other_fields(self):
        plan = KernelPlanConfig(enable_load_balancing=False)
        out = TuneConfig(subwarp_limit=8, block_limit=256) \
            .apply_to_plan(plan)
        assert out.subwarp_limit == 8
        assert out.block_limit == 256
        assert out.enable_load_balancing is False

    def test_engine_applies_thresholds_and_chunk(self):
        engine = NextDoorEngine(
            tune=TuneConfig(subwarp_limit=16, block_limit=512,
                            chunk_size=128))
        assert engine.config.subwarp_limit == 16
        assert engine.config.block_limit == 512
        assert engine.chunk_size == 128

    def test_explicit_chunk_beats_tuned(self):
        engine = NextDoorEngine(tune=TuneConfig(chunk_size=128),
                                chunk_size=64)
        assert engine.chunk_size == 64


class TestTuneDB:
    def test_env_var_names_path(self, tmp_path, monkeypatch):
        path = str(tmp_path / "env.json")
        monkeypatch.setenv(DB_ENV, path)
        assert TuneDB().path == path

    def test_explicit_path_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(DB_ENV, str(tmp_path / "env.json"))
        assert TuneDB(str(tmp_path / "flag.json")).path == \
            str(tmp_path / "flag.json")

    def test_record_save_load(self, tmp_path, graph):
        path = str(tmp_path / "db.json")
        db = TuneDB(path)
        cfg = TuneConfig(backend="cnative", relabel="degree")
        db.record("DeepWalk", graph, cfg, objective="wallclock",
                  score=0.25, baseline=1.0, trials=9)
        db.save()
        reloaded = TuneDB(path)
        assert reloaded.lookup("DeepWalk", graph) == cfg
        entry = reloaded.get_entry("DeepWalk", graph)
        assert entry["speedup"] == pytest.approx(4.0)
        assert entry["trials"] == 9
        assert reloaded.validate() == []

    def test_lookup_misses_are_none(self, tmp_path, graph):
        db = TuneDB(str(tmp_path / "db.json"))
        assert db.lookup("DeepWalk", graph) is None

    def test_two_writers_interleave_without_clobbering(self, tmp_path,
                                                       graph):
        # Race shape: both writers load the (empty) DB, then each
        # records a different entry and saves.  Without the locked
        # read-merge-write in save(), whichever writer saves last
        # would erase the other's entry.
        path = str(tmp_path / "db.json")
        other = rmat_graph(400, 2400, seed=23, name="tune-test-other")
        writer_a = TuneDB(path)
        writer_b = TuneDB(path)
        writer_a.record("DeepWalk", graph, TuneConfig(relabel="degree"),
                        objective="model", score=0.5, baseline=1.0,
                        trials=3)
        writer_b.record("PPR", other, TuneConfig(chunk_size=512),
                        objective="model", score=0.25, baseline=1.0,
                        trials=4)
        writer_a.save()
        writer_b.save()
        merged = TuneDB(path)
        assert merged.lookup("DeepWalk", graph) == \
            TuneConfig(relabel="degree")
        assert merged.lookup("PPR", other) == TuneConfig(chunk_size=512)

    def test_save_only_overwrites_own_dirty_keys(self, tmp_path, graph):
        # A stale instance that merely *read* an entry must not revert
        # a newer on-disk value for it when saving its own work.
        path = str(tmp_path / "db.json")
        first = TuneDB(path)
        first.record("DeepWalk", graph, TuneConfig(relabel="degree"),
                     objective="model", score=0.5, baseline=1.0,
                     trials=3)
        first.save()
        stale = TuneDB(path)  # holds relabel="degree" in memory
        newer = TuneDB(path)
        newer.record("DeepWalk", graph, TuneConfig(chunk_size=256),
                     objective="model", score=0.4, baseline=1.0,
                     trials=5)
        newer.save()
        other = rmat_graph(400, 2400, seed=23, name="tune-test-other")
        stale.record("PPR", other, TuneConfig(), objective="model",
                     score=1.0, baseline=1.0, trials=1)
        stale.save()
        merged = TuneDB(path)
        assert merged.lookup("DeepWalk", graph) == \
            TuneConfig(chunk_size=256)
        assert merged.lookup("PPR", other) == TuneConfig()

    def test_concurrent_process_writers_all_survive(self, tmp_path):
        # Two real processes hammer the same DB through the advisory
        # lock; every entry must survive.
        import subprocess
        import sys
        path = str(tmp_path / "db.json")
        script = (
            "import sys\n"
            "from repro.tune import TuneDB, TuneConfig\n"
            "from repro.graph.generators import rmat_graph\n"
            "tag = int(sys.argv[1]); path = sys.argv[2]\n"
            "g = rmat_graph(200, 900, seed=tag, name=f'w{tag}')\n"
            "for i in range(5):\n"
            "    db = TuneDB(path)\n"
            "    db.record(f'app{tag}.{i}', g, TuneConfig(),\n"
            "              objective='model', score=1.0, baseline=1.0,\n"
            "              trials=1)\n"
            "    db.save()\n")
        procs = [subprocess.Popen(
            [sys.executable, "-c", script, str(tag), path],
            env={**os.environ,
                 "PYTHONPATH": os.pathsep.join(
                     [os.path.join(os.path.dirname(__file__), os.pardir,
                                   "src")] +
                     os.environ.get("PYTHONPATH", "").split(os.pathsep))})
            for tag in (1, 2)]
        for p in procs:
            assert p.wait(timeout=120) == 0
        merged = TuneDB(path)
        assert merged.validate() == []
        assert len(merged.entries) == 10

    def test_fingerprint_tracks_content(self, graph):
        other = rmat_graph(400, 2400, seed=23, name="tune-test-rmat")
        assert graph_fingerprint("DeepWalk", graph) != \
            graph_fingerprint("DeepWalk", other)

    def test_fingerprint_shared_with_relabeled_view(self, graph):
        from repro.graph.relabel import relabel_graph
        assert graph_fingerprint("DeepWalk", graph) == \
            graph_fingerprint("DeepWalk", relabel_graph(graph))

    def test_save_is_atomic_and_sorted(self, tmp_path, graph):
        path = str(tmp_path / "db.json")
        db = TuneDB(path)
        db.record("DeepWalk", graph, TuneConfig(), objective="model",
                  score=1.0, baseline=1.0, trials=1)
        db.save()
        text = open(path).read()
        assert json.loads(text)["version"] == 1
        assert not [n for n in os.listdir(tmp_path)
                    if n.startswith(".tune-")]

    def test_validate_flags_bad_schema(self):
        assert TuneDB.validate_data([]) == ["top level is not an object"]
        assert TuneDB.validate_data({"version": 99, "entries": {}})
        bad_entry = {"version": 1, "entries": {"k": {"app": "x"}}}
        assert any("missing" in p
                   for p in TuneDB.validate_data(bad_entry))
        bad_cfg = {"version": 1, "entries": {"k": {
            "app": "x", "graph": "g", "config": {"bogus": 1},
            "objective": "model", "score": 1.0, "baseline": 1.0,
            "speedup": 1.0, "trials": 1}}}
        assert any("config invalid" in p
                   for p in TuneDB.validate_data(bad_cfg))

    def test_corrupt_db_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "entries": {}}')
        with pytest.raises(ValueError, match="invalid tuning database"):
            TuneDB(str(path))


class TestSearch:
    def test_model_objective_is_deterministic(self, tmp_path, graph):
        db_path = str(tmp_path / "db.json")
        app = apps.DeepWalk(walk_length=6)
        s1 = autotune(app, graph, db=TuneDB(db_path), objective="model",
                      budget=5, num_samples=64, save=False)
        s2 = autotune(apps.DeepWalk(walk_length=6), graph,
                      db=TuneDB(db_path), objective="model", budget=5,
                      num_samples=64, save=False)
        assert s1["config"] == s2["config"]
        assert s1["score"] == s2["score"]
        assert s1["trials"] == s2["trials"] == 5

    def test_budget_caps_trials(self, tmp_path, graph):
        summary = autotune(apps.DeepWalk(walk_length=4), graph,
                           db=TuneDB(str(tmp_path / "db.json")),
                           objective="model", budget=2, num_samples=32,
                           save=False)
        assert summary["trials"] == 2

    def test_records_in_db_and_saves(self, tmp_path, graph):
        db = TuneDB(str(tmp_path / "db.json"))
        summary = autotune(apps.KHop(fanouts=(4, 2)), graph, db=db,
                           objective="model", budget=4, num_samples=64)
        assert os.path.exists(summary["db_path"])
        reloaded = TuneDB(summary["db_path"])
        assert reloaded.lookup(summary["app"], graph) == \
            TuneConfig.from_dict(summary["config"])
        assert reloaded.validate() == []

    def test_history_carries_model_counters(self, tmp_path, graph):
        summary = autotune(apps.DeepWalk(walk_length=4), graph,
                           db=TuneDB(str(tmp_path / "db.json")),
                           objective="model", budget=3, num_samples=32,
                           save=False)
        assert all(t["counters"] is not None
                   for t in summary["history"])
        assert "sm_busy_cycles" in summary["history"][0]["counters"]

    def test_rejects_bad_arguments(self, tmp_path, graph):
        app = apps.DeepWalk(walk_length=4)
        db = TuneDB(str(tmp_path / "db.json"))
        with pytest.raises(ValueError, match="objective"):
            autotune(app, graph, db=db, objective="latency")
        with pytest.raises(ValueError, match="budget"):
            autotune(app, graph, db=db, budget=0)
        with pytest.raises(ValueError, match="repeats"):
            autotune(app, graph, db=db, repeats=0)

    def test_tuned_samples_match_default_when_chunk_untouched(
            self, graph):
        """Whatever the search picks (chunk size aside), applying it
        must not change sampled values."""
        cfg = TuneConfig(backend="cnative", relabel="degree",
                         subwarp_limit=16, block_limit=512)
        app = apps.DeepWalk(walk_length=6)
        base = NextDoorEngine().run(app, graph, num_samples=64, seed=7)
        tuned = NextDoorEngine(tune=cfg).run(
            apps.DeepWalk(walk_length=6), graph, num_samples=64, seed=7)
        for a, b in zip(base.batch.step_vertices,
                        tuned.batch.step_vertices):
            assert np.array_equal(a, b)

    def test_full_stage_sweep_completes(self, tmp_path, graph):
        """A budget large enough to reach every stage — including the
        kernel-threshold sweep — must not trip the kernel model's
        block-shape limits."""
        summary = autotune(apps.KHop(fanouts=(8, 4)), graph,
                           db=TuneDB(str(tmp_path / "db.json")),
                           objective="model", budget=32, num_samples=128,
                           save=False)
        assert summary["trials"] <= 32
        cfg = TuneConfig.from_dict(summary["config"])
        assert cfg.block_limit <= 1024

    def test_infeasible_config_is_skipped(self, tmp_path, graph):
        """A config the kernel model rejects is counted as infeasible,
        not a crash."""
        from repro.obs import get_metrics
        from repro.tune.search import _Search
        # 2000 draws from one transit -> 63 warps/block at
        # block_limit=2048, past the 32-warp hardware cap.
        search = _Search(apps.KHop(fanouts=(2000,)), graph,
                         objective="model", budget=4, num_samples=4,
                         seed=0, workers=None, repeats=1,
                         engine_cls=None)
        before = get_metrics().snapshot("tune.").get(
            "tune.infeasible", 0)
        assert search.consider(TuneConfig(block_limit=2048)) is True
        assert search.history == []  # nothing recorded
        after = get_metrics().snapshot("tune.")["tune.infeasible"]
        assert after == before + 1

    def test_metrics_counters_bump(self, tmp_path, graph):
        from repro.obs import get_metrics
        before = get_metrics().snapshot("tune.").get("tune.trials", 0)
        autotune(apps.DeepWalk(walk_length=4), graph,
                 db=TuneDB(str(tmp_path / "db.json")),
                 objective="model", budget=2, num_samples=32,
                 save=False)
        after = get_metrics().snapshot("tune.")["tune.trials"]
        assert after == before + 2


class TestCLI:
    def test_chunk_size_validation(self):
        out = io.StringIO()
        code = main(["sample", "--app", "DeepWalk", "--graph", "ppi",
                     "--samples", "8", "--chunk-size", "0"], out=out)
        assert code == 2
        assert "--chunk-size must be >= 1" in out.getvalue()

    def test_chunk_size_negative(self):
        out = io.StringIO()
        code = main(["sample", "--app", "DeepWalk", "--graph", "ppi",
                     "--samples", "8", "--chunk-size", "-4"], out=out)
        assert code == 2
        assert "error:" in out.getvalue()

    def test_tune_then_tuned_sample(self, tmp_path):
        db_path = str(tmp_path / "db.json")
        out = io.StringIO()
        code = main(["tune", "--app", "DeepWalk", "--graph", "ppi",
                     "--objective", "model", "--budget", "3",
                     "--samples", "64", "--db", db_path], out=out)
        assert code == 0, out.getvalue()
        assert "saved to" in out.getvalue()
        assert TuneDB(db_path).validate() == []
        out = io.StringIO()
        code = main(["sample", "--app", "DeepWalk", "--graph", "ppi",
                     "--samples", "32", "--tuned",
                     "--tune-db", db_path], out=out)
        assert code == 0, out.getvalue()
        assert "tuned config:" in out.getvalue()

    def test_explicit_backend_flag_beats_tuned_backend(self, tmp_path):
        """Precedence: --backend on the command line wins over the
        tuning database's backend, like it wins over $REPRO_BACKEND."""
        from repro.bench.runner import paper_graph
        db_path = str(tmp_path / "db.json")
        db = TuneDB(db_path)
        graph = paper_graph("ppi", "DeepWalk", seed=0)
        db.record("DeepWalk", graph,
                  TuneConfig(backend="cnative", chunk_size=1024),
                  objective="wallclock", score=0.5, baseline=1.0,
                  trials=3)
        db.save()
        out = io.StringIO()
        code = main(["sample", "--app", "DeepWalk", "--graph", "ppi",
                     "--samples", "16", "--tuned", "--tune-db", db_path,
                     "--backend", "numpy"], out=out)
        assert code == 0, out.getvalue()
        text = out.getvalue()
        # The rest of the tuned config still applies...
        assert "chunk_size=1024" in text
        # ...but the database's backend choice is dropped.
        assert "backend=cnative" not in text

    def test_tuned_env_var(self, tmp_path, monkeypatch):
        db_path = str(tmp_path / "db.json")
        monkeypatch.setenv("REPRO_TUNED", "1")
        monkeypatch.setenv(DB_ENV, db_path)
        out = io.StringIO()
        code = main(["sample", "--app", "DeepWalk", "--graph", "ppi",
                     "--samples", "16"], out=out)
        assert code == 0, out.getvalue()
        assert "no tuning entry" in out.getvalue()

    def test_tuned_rejected_for_cpu_engines(self):
        out = io.StringIO()
        code = main(["sample", "--app", "DeepWalk", "--graph", "ppi",
                     "--samples", "8", "--engine", "reference",
                     "--tuned"], out=out)
        assert code == 2
        assert "NextDoor-family" in out.getvalue()

    @pytest.mark.parametrize("flag,value", [
        ("--budget", "0"), ("--repeats", "0"), ("--samples", "0"),
    ])
    def test_tune_flag_validation(self, flag, value):
        out = io.StringIO()
        code = main(["tune", "--app", "DeepWalk", "--graph", "ppi",
                     flag, value], out=out)
        assert code == 2
        assert "error:" in out.getvalue()

    def test_tune_unknown_graph(self):
        out = io.StringIO()
        code = main(["tune", "--app", "DeepWalk", "--graph",
                     "nope-graph"], out=out)
        assert code == 2
        assert "unknown graph" in out.getvalue()

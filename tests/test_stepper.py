"""Shared functional stepping logic."""

import numpy as np
import pytest

from repro.api.apps import DeepWalk, KHop, Layer, Node2Vec
from repro.api.types import NULL_VERTEX
from repro.core import stepper
from repro.core.transit_map import flatten_transits


class TestInitBatch:
    def test_from_num_samples(self, medium_graph, rng):
        batch = stepper.init_batch(DeepWalk(5), medium_graph, 16, None, rng)
        assert batch.num_samples == 16
        assert batch.roots.shape == (16, 1)

    def test_from_roots(self, medium_graph, rng):
        roots = np.arange(6, dtype=np.int64)[:, None]
        batch = stepper.init_batch(DeepWalk(5), medium_graph, None, roots,
                                   rng)
        assert np.array_equal(batch.roots, roots)

    def test_neither_rejected(self, medium_graph, rng):
        with pytest.raises(ValueError):
            stepper.init_batch(DeepWalk(5), medium_graph, None, None, rng)

    def test_state_installed(self, medium_graph, rng):
        from repro.api.apps import MultiRW
        batch = stepper.init_batch(MultiRW(num_roots=4, walk_length=3),
                                   medium_graph, 8, None, rng)
        assert "roots" in batch.state


class TestStepLimit:
    def test_fixed(self):
        assert stepper.step_limit(DeepWalk(17)) == 17

    def test_inf_uses_cap(self):
        from repro.api.apps import PPR
        assert stepper.step_limit(PPR(max_steps=99)) == 99


class TestPrevTransits:
    def test_step_zero_none(self, medium_graph, rng):
        batch = stepper.init_batch(DeepWalk(3), medium_graph, 4, None, rng)
        assert stepper.prev_transits_for(batch, 0, np.arange(4),
                                         np.zeros(4, dtype=np.int64)) is None

    def test_step_one_roots(self, medium_graph, rng):
        batch = stepper.init_batch(DeepWalk(3), medium_graph, 4, None, rng)
        batch.append_step(np.arange(4)[:, None])
        prev = stepper.prev_transits_for(batch, 1, np.arange(4),
                                         np.zeros(4, dtype=np.int64))
        assert np.array_equal(prev, batch.roots[:, 0])

    def test_step_two_previous_step(self, medium_graph, rng):
        batch = stepper.init_batch(DeepWalk(3), medium_graph, 4, None, rng)
        batch.append_step(np.array([[10], [11], [12], [13]]))
        batch.append_step(np.array([[20], [21], [22], [23]]))
        prev = stepper.prev_transits_for(batch, 2, np.arange(4),
                                         np.zeros(4, dtype=np.int64))
        assert list(prev) == [10, 11, 12, 13]


class TestIndividualStep:
    def test_scatter_back_shape(self, medium_graph, rng):
        app = KHop((4,))
        batch = stepper.init_batch(app, medium_graph, 8, None, rng)
        transits = app.transits_for_step(batch, 0)
        ids, cols, vals = flatten_transits(transits)
        out, info = stepper.run_individual_step(
            app, medium_graph, batch, transits, 0, rng, ids, cols, vals)
        assert out.shape == (8, 4)
        assert (out != NULL_VERTEX).all()

    def test_null_transits_stay_null(self, medium_graph, rng):
        app = DeepWalk(3)
        batch = stepper.init_batch(app, medium_graph, 3, None, rng)
        transits = np.array([[NULL_VERTEX], [0], [NULL_VERTEX]])
        ids, cols, vals = flatten_transits(transits)
        out, _ = stepper.run_individual_step(
            app, medium_graph, batch, transits, 0, rng, ids, cols, vals)
        assert out[0, 0] == NULL_VERTEX
        assert out[2, 0] == NULL_VERTEX

    def test_prev_transits_threaded_for_node2vec(self, medium_graph, rng):
        app = Node2Vec(walk_length=3)
        batch = stepper.init_batch(app, medium_graph, 8, None, rng)
        batch.append_step(app.transits_for_step(batch, 0))
        transits = app.transits_for_step(batch, 1)
        ids, cols, vals = flatten_transits(transits)
        out, info = stepper.run_individual_step(
            app, medium_graph, batch, transits, 1, rng, ids, cols, vals)
        assert out.shape == (8, 1)


class TestCollectiveStep:
    def test_sizes_reported(self, medium_graph, rng):
        app = Layer(step_size=5, max_size=50)
        batch = stepper.init_batch(app, medium_graph, 4, None, rng)
        transits = app.transits_for_step(batch, 0)
        out, info, edges, sizes = stepper.run_collective_step(
            app, medium_graph, batch, transits, 0, rng)
        expected = [medium_graph.degree(int(r)) for r in batch.roots[:, 0]]
        assert list(sizes) == expected

    def test_lazy_path_skips_materialisation(self, medium_graph, rng,
                                             monkeypatch):
        import repro.core.stepper as stepper_mod
        calls = []
        original = stepper_mod.build_combined_neighborhood

        def spy(graph, transits):
            calls.append(1)
            return original(graph, transits)

        monkeypatch.setattr(stepper_mod, "build_combined_neighborhood",
                            spy)
        app = Layer(step_size=5, max_size=50)  # needs_combined_values=False
        batch = stepper.init_batch(app, medium_graph, 4, None, rng)
        transits = app.transits_for_step(batch, 0)
        stepper.run_collective_step(app, medium_graph, batch, transits,
                                    0, rng)
        assert not calls

    def test_reference_forces_materialisation(self, medium_graph, rng,
                                              monkeypatch):
        import repro.core.stepper as stepper_mod
        calls = []
        original = stepper_mod.build_combined_neighborhood

        def spy(graph, transits):
            calls.append(1)
            return original(graph, transits)

        monkeypatch.setattr(stepper_mod, "build_combined_neighborhood",
                            spy)
        app = Layer(step_size=2, max_size=6)
        batch = stepper.init_batch(app, medium_graph, 2, None, rng)
        transits = app.transits_for_step(batch, 0)
        stepper.run_collective_step(app, medium_graph, batch, transits,
                                    0, rng, use_reference=True)
        assert calls

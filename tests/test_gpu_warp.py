"""WarpStats: per-warp cost and counter accounting."""

import pytest

from repro.gpu.spec import V100
from repro.gpu.warp import WarpStats, coalesced_segments


class TestCoalescedSegments:
    def test_exact_fit(self):
        assert coalesced_segments(4) == 1  # 4 x 8B = one 32B segment

    def test_rounds_up(self):
        assert coalesced_segments(5) == 2

    def test_warp_of_words(self):
        assert coalesced_segments(32) == 8

    def test_zero(self):
        assert coalesced_segments(0) == 0.0


class TestWarpStats:
    def test_compute(self):
        w = WarpStats(V100).compute(10.0)
        assert w.cycles == 10.0
        assert w.counters.compute_cycles == 10.0

    def test_global_load_default_coalesced(self):
        w = WarpStats(V100).global_load(32)
        assert w.counters.global_load_transactions == 8
        expected = 8 * V100.global_transaction_cycles / V100.memory_parallelism
        assert w.cycles == pytest.approx(expected)

    def test_global_load_scattered(self):
        w = WarpStats(V100).global_load(32, segments=32)
        assert w.counters.global_load_transactions == 32

    def test_global_store_efficiency_tracking(self):
        w = WarpStats(V100).global_store(32, segments=32)
        assert w.counters.ideal_global_store_transactions == 8
        assert w.counters.global_store_transactions == 32
        assert w.counters.store_efficiency == pytest.approx(0.25)

    def test_store_cheaper_than_load(self):
        load = WarpStats(V100).global_load(32, segments=8).cycles
        store = WarpStats(V100).global_store(32, segments=8).cycles
        # Stores are fire-and-forget: latency below an equal load burst
        # after accounting for the load's memory-level parallelism.
        assert store < load * V100.memory_parallelism

    def test_shared_accesses(self):
        w = WarpStats(V100).shared_load(2).shared_store(3)
        assert w.counters.shared_load_transactions == 2
        assert w.counters.shared_store_transactions == 3
        assert w.cycles == pytest.approx(
            5 * V100.shared_transaction_cycles)

    def test_shuffle(self):
        w = WarpStats(V100).shuffle(4)
        assert w.counters.register_shuffles == 4
        assert w.cycles == pytest.approx(4 * V100.shuffle_cycles)

    def test_branch_uniform(self):
        w = WarpStats(V100).branch()
        assert w.counters.branches == 1
        assert w.counters.divergent_branches == 0
        assert w.cycles == 0.0

    def test_branch_divergent_serializes(self):
        w = WarpStats(V100).branch(divergent=True, extra_paths=2,
                                   path_cycles=5.0)
        assert w.counters.divergent_branches == 1
        assert w.cycles == 10.0

    def test_scaled_counters(self):
        w = WarpStats(V100).global_load(32)
        scaled = w.scaled(10)
        assert scaled.global_load_transactions == 80

    def test_chaining(self):
        w = WarpStats(V100).compute(1.0).global_load(4).shuffle(1)
        assert w.cycles > 0

"""Worker supervision: respawn, retry, quarantine, degrade-last.

The invariant every test here guards: no injected failure may change a
single sampled vertex.  Crashes cost wall-clock (respawns, in-process
re-runs), never correctness — and degradation to in-process execution
is the *last* resort, taken only once the respawn budget is spent.
"""

import warnings

import numpy as np
import pytest

from repro.api.apps import DeepWalk
from repro.core.engine import NextDoorEngine
from repro.obs import get_metrics
from repro.runtime.faults import PLAN_ENV
from repro.runtime.pool import (
    RESPAWN_ENV,
    TIMEOUT_ENV,
    WorkerCrash,
    WorkerPool,
    get_pool,
    retire_pool,
    shutdown_pools,
)

CHUNK = 64


def _expected(graph):
    return NextDoorEngine(workers=0, chunk_size=CHUNK).run(
        DeepWalk(walk_length=16), graph, num_samples=256, seed=11)


def _faulted(graph, plan, monkeypatch, *, timeout=None, respawns=None,
             expect_degrade=False):
    monkeypatch.setenv(PLAN_ENV, plan)
    if timeout is not None:
        monkeypatch.setenv(TIMEOUT_ENV, str(timeout))
    if respawns is not None:
        monkeypatch.setenv(RESPAWN_ENV, str(respawns))
    engine = NextDoorEngine(workers=2, chunk_size=CHUNK)
    if expect_degrade:
        with pytest.warns(RuntimeWarning, match="in-process"):
            return engine.run(DeepWalk(walk_length=16), graph,
                              num_samples=256, seed=11)
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        return engine.run(DeepWalk(walk_length=16), graph,
                          num_samples=256, seed=11)


def _assert_identical(a, b):
    assert np.array_equal(a.batch.roots, b.batch.roots)
    assert len(a.batch.step_vertices) == len(b.batch.step_vertices)
    for x, y in zip(a.batch.step_vertices, b.batch.step_vertices):
        assert np.array_equal(x, y)
    assert a.seconds == b.seconds


class TestRespawn:
    def test_crash_after_result_is_healed(self, medium_weighted,
                                          monkeypatch):
        """kill-after-chunk: the worker dies having shipped its result;
        the supervisor respawns it and the run never degrades."""
        expected = _expected(medium_weighted)
        respawns = get_metrics().counter("pool.worker_respawns")
        before = respawns.value
        got = _faulted(medium_weighted, "kill-after-chunk:0.2",
                       monkeypatch)
        _assert_identical(expected, got)
        assert respawns.value > before

    def test_crash_before_chunk_requeues_lost_chunk(self,
                                                    medium_weighted,
                                                    monkeypatch):
        """kill-before-chunk with a STEP.CHUNK trigger: the chunk is
        lost once, retried, and (because the respawned worker's fresh
        fault budget kills it again) quarantined to run in-process."""
        expected = _expected(medium_weighted)
        quarantined = get_metrics().counter("pool.chunks_quarantined")
        before = quarantined.value
        got = _faulted(medium_weighted, "kill-before-chunk:0.2",
                       monkeypatch)
        _assert_identical(expected, got)
        assert quarantined.value > before

    def test_wedged_worker_is_respawned_by_watchdog(self,
                                                    medium_weighted,
                                                    monkeypatch):
        expected = _expected(medium_weighted)
        crashes = get_metrics().counter("pool.worker_crashes")
        before = crashes.value
        got = _faulted(medium_weighted, "wedge-chunk:0.1",
                       monkeypatch, timeout=1.0, respawns=8)
        _assert_identical(expected, got)
        assert crashes.value > before

    def test_chunk_error_reruns_in_process(self, medium_weighted,
                                           monkeypatch):
        """A worker-side exception quarantines the chunk (in-process
        re-run) without killing the pool or the run."""
        from repro.obs.metrics import scalar_of
        expected = _expected(medium_weighted)

        def errors_total():
            return scalar_of(get_metrics().snapshot().get(
                "pool.chunk_errors", 0.0))

        before = errors_total()
        got = _faulted(medium_weighted, "chunk-error:0.1", monkeypatch)
        _assert_identical(expected, got)
        assert errors_total() > before

    def test_budget_exhausted_degrades_with_identical_samples(
            self, medium_weighted, monkeypatch):
        """Respawn budget 0 restores the old abandon-on-first-crash
        behaviour — loudly, and still bitwise-identical."""
        expected = _expected(medium_weighted)
        got = _faulted(medium_weighted, "kill-before-chunk:0.1",
                       monkeypatch, respawns=0, expect_degrade=True)
        _assert_identical(expected, got)
        assert get_metrics().gauge("runtime.degraded_mode").value == 1


class TestBroadcastFailure:
    def test_broadcast_to_dead_worker_raises_workercrash(self):
        pool = WorkerPool(1)
        try:
            pool.procs[0].terminate()
            pool.procs[0].join()
            crashes = get_metrics().counter("pool.worker_crashes")
            before = crashes.value
            with pytest.raises(WorkerCrash):
                pool.broadcast_run(DeepWalk(walk_length=4), None, 0,
                                   False)
            assert crashes.value > before
        finally:
            pool.shutdown()

    def test_injected_broadcast_failure_degrades_loudly(
            self, medium_weighted, monkeypatch):
        expected = _expected(medium_weighted)
        got = _faulted(medium_weighted, "broadcast-fail", monkeypatch,
                       expect_degrade=True)
        _assert_identical(expected, got)


class TestPoolRegistry:
    def test_retired_pool_is_replaced_on_next_get(self):
        try:
            pool = get_pool(1)
            retire_pool(pool)
            assert pool._closed
            fresh = get_pool(1)
            assert fresh is not pool
            assert fresh.healthy()
        finally:
            shutdown_pools()

    def test_run_after_retire_uses_fresh_pool(self, medium_weighted):
        """An engine run right after a retirement must come up on a
        fresh pool, not fail on the closed one."""
        retire_pool(get_pool(2))
        expected = _expected(medium_weighted)
        engine = NextDoorEngine(workers=2, chunk_size=CHUNK)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            got = engine.run(DeepWalk(walk_length=16), medium_weighted,
                             num_samples=256, seed=11)
        _assert_identical(expected, got)

    def test_run_chunks_on_closed_pool_raises(self):
        pool = WorkerPool(1)
        pool.shutdown()
        with pytest.raises(WorkerCrash, match="shut down"):
            pool.run_chunks([(0, ("ping",))])

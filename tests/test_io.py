"""Graph I/O: SNAP edge lists and npz round trips."""

import numpy as np
import pytest

from repro.graph import io
from repro.graph.csr import CSRGraph


class TestEdgeList:
    def test_round_trip(self, tiny_graph, tmp_path):
        path = str(tmp_path / "g.txt")
        io.save_edge_list(tiny_graph, path)
        loaded = io.load_edge_list(path, num_vertices=7)
        assert loaded == tiny_graph

    def test_round_trip_weighted(self, tiny_weighted, tmp_path):
        path = str(tmp_path / "g.txt")
        io.save_edge_list(tiny_weighted, path)
        loaded = io.load_edge_list(path, num_vertices=7)
        assert loaded.is_weighted
        assert np.allclose(np.sort(loaded.weights),
                           np.sort(tiny_weighted.weights), rtol=1e-4)

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# SNAP header\n\n0 1\n1 2\n# trailing\n")
        g = io.load_edge_list(str(path))
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_undirected_load(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        g = io.load_edge_list(str(path), undirected=True)
        assert g.has_edge(1, 0)

    def test_infers_vertex_count(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 9\n")
        assert io.load_edge_list(str(path)).num_vertices == 10

    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(ValueError, match="expected 2 or 3"):
            io.load_edge_list(str(path))

    def test_inconsistent_weights(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2.5\n1 2\n")
        with pytest.raises(ValueError, match="inconsistent"):
            io.load_edge_list(str(path))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# nothing\n")
        g = io.load_edge_list(str(path))
        assert g.num_vertices == 0

    def test_name_defaults_to_filename(self, tmp_path):
        path = tmp_path / "mygraph.txt"
        path.write_text("0 1\n")
        assert io.load_edge_list(str(path)).name == "mygraph.txt"


class TestEdgeCaseGraphs:
    """Round-trips on the degenerate shapes the fuzz suite exercises."""

    def test_empty_graph_npz(self, tmp_path):
        g = CSRGraph.from_edges(0, [], name="empty")
        path = str(tmp_path / "g.npz")
        io.save_npz(g, path)
        loaded = io.load_npz(path)
        assert loaded.num_vertices == 0
        assert loaded.num_edges == 0
        assert loaded == g

    def test_empty_graph_edge_list(self, tmp_path):
        g = CSRGraph.from_edges(0, [], name="empty")
        path = str(tmp_path / "g.txt")
        io.save_edge_list(g, path)
        loaded = io.load_edge_list(path, num_vertices=0)
        assert loaded == g

    def test_single_vertex_no_edges(self, tmp_path):
        g = CSRGraph.from_edges(1, [], name="single")
        path = str(tmp_path / "g.npz")
        io.save_npz(g, path)
        loaded = io.load_npz(path)
        assert loaded.num_vertices == 1
        assert loaded.degree(0) == 0
        assert loaded == g

    def test_duplicate_edges_preserved(self, tmp_path):
        g = CSRGraph.from_edges(
            3, [(0, 1), (0, 1), (0, 1), (1, 2)], name="dup")
        for suffix, save, load in (
                (".txt", io.save_edge_list,
                 lambda p: io.load_edge_list(p, num_vertices=3)),
                (".npz", io.save_npz, io.load_npz)):
            path = str(tmp_path / f"g{suffix}")
            save(g, path)
            loaded = load(path)
            assert loaded.num_edges == 4
            assert loaded.degree(0) == 3
            assert loaded == g

    def test_self_loops_round_trip(self, tmp_path):
        g = CSRGraph.from_edges(2, [(0, 0), (0, 1), (1, 1)], name="loops")
        path = str(tmp_path / "g.npz")
        io.save_npz(g, path)
        loaded = io.load_npz(path)
        assert loaded.has_edge(0, 0) and loaded.has_edge(1, 1)
        assert loaded == g

    def test_max_degree_star_round_trip(self, star_graph, tmp_path):
        for suffix, save, load in (
                (".txt", io.save_edge_list,
                 lambda p: io.load_edge_list(
                     p, num_vertices=star_graph.num_vertices)),
                (".npz", io.save_npz, io.load_npz)):
            path = str(tmp_path / f"g{suffix}")
            save(star_graph, path)
            loaded = load(path)
            assert loaded.degree(0) == star_graph.num_vertices - 1
            assert loaded == star_graph


class TestNpz:
    def test_round_trip(self, tiny_graph, tmp_path):
        path = str(tmp_path / "g.npz")
        io.save_npz(tiny_graph, path)
        assert io.load_npz(path) == tiny_graph

    def test_round_trip_weighted(self, tiny_weighted, tmp_path):
        path = str(tmp_path / "g.npz")
        io.save_npz(tiny_weighted, path)
        loaded = io.load_npz(path)
        assert loaded.is_weighted
        assert loaded == tiny_weighted

    def test_name_preserved(self, tiny_graph, tmp_path):
        path = str(tmp_path / "g.npz")
        io.save_npz(tiny_graph, path)
        assert io.load_npz(path).name == "tiny"

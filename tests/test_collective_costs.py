"""Collective-sampling and dedup cost modules, charged in isolation."""

import numpy as np
import pytest

from repro.api.types import StepInfo
from repro.core.collective import (
    charge_collective_selection,
    charge_combined_neighborhood_sp,
    charge_combined_neighborhood_tp,
    charge_edge_recording,
)
from repro.core.transit_map import build_transit_map
from repro.core.unique import charge_dedup, dedupe_rows
from repro.gpu.device import Device


def make_tmap(counts):
    if not counts:
        return build_transit_map(np.zeros((0, 1), dtype=np.int64))
    transits = np.concatenate([
        np.full(c, i, dtype=np.int64) for i, c in enumerate(counts)])
    return build_transit_map(transits[:, None])


class TestCombinedNeighborhoodCosts:
    def test_tp_cheaper_than_sp(self):
        """The transit-parallel construction reads each adjacency once;
        sample-parallel re-reads it per pair — the Section 6.2 claim."""
        counts = [50] * 20
        degrees = np.full(20, 64, dtype=np.int64)
        tp_dev = Device()
        charge_combined_neighborhood_tp(tp_dev, make_tmap(counts), degrees)
        sp_dev = Device()
        pair_degrees = np.repeat(degrees, counts)
        charge_combined_neighborhood_sp(sp_dev, make_tmap(counts),
                                        pair_degrees)
        assert sp_dev.elapsed_seconds > tp_dev.elapsed_seconds
        assert (sp_dev.metrics.counters.global_load_transactions
                > 3 * tp_dev.metrics.counters.global_load_transactions)

    def test_tp_empty(self):
        d = Device()
        charge_combined_neighborhood_tp(
            d, make_tmap([]), np.zeros(0, dtype=np.int64))
        assert d.elapsed_seconds == 0.0

    def test_sp_empty(self):
        d = Device()
        charge_combined_neighborhood_sp(
            d, make_tmap([]), np.zeros(0, dtype=np.int64))
        assert d.elapsed_seconds == 0.0

    def test_tp_scales_with_volume(self):
        small = Device()
        charge_combined_neighborhood_tp(
            small, make_tmap([10] * 100),
            np.full(100, 16, dtype=np.int64))
        large = Device()
        charge_combined_neighborhood_tp(
            large, make_tmap([10] * 100),
            np.full(100, 1600, dtype=np.int64))
        assert large.elapsed_seconds > 5 * small.elapsed_seconds


class TestSelectionAndRecording:
    def test_selection_scales_with_samples(self):
        a = Device()
        charge_collective_selection(a, 100, 64, StepInfo())
        b = Device()
        charge_collective_selection(b, 10000, 64, StepInfo())
        assert b.elapsed_seconds > a.elapsed_seconds

    def test_selection_zero_free(self):
        d = Device()
        charge_collective_selection(d, 0, 64, StepInfo())
        charge_collective_selection(d, 64, 0, StepInfo())
        assert d.elapsed_seconds == 0.0

    def test_edge_recording_scales(self):
        a = Device()
        charge_edge_recording(a, 1000)
        b = Device()
        charge_edge_recording(b, 1_000_000)
        assert b.elapsed_seconds > 10 * a.elapsed_seconds

    def test_edge_recording_zero_free(self):
        d = Device()
        charge_edge_recording(d, 0)
        assert d.elapsed_seconds == 0.0


class TestDedupCosts:
    def test_charged_to_sampling_phase(self):
        d = Device()
        charge_dedup(d, 100, 64)
        assert d.timeline.total_seconds(phase="sampling") > 0

    def test_width_one_free(self):
        d = Device()
        charge_dedup(d, 100, 1)
        assert d.elapsed_seconds == 0.0

    def test_large_rows_fall_back_to_global(self):
        small = Device()
        charge_dedup(small, 4, 512)
        large = Device()
        # 32k words x 8B > 48KB shared memory: device-wide sort path.
        charge_dedup(large, 4, 32768)
        per_elem_small = small.elapsed_seconds / (4 * 512)
        per_elem_large = large.elapsed_seconds / (4 * 32768)
        assert per_elem_large > per_elem_small

    def test_functional_dedupe_counts(self):
        rows = np.array([[1, 1, 2], [3, 4, 5]])
        out, dups = dedupe_rows(rows)
        assert dups == 1
        assert out[0, 0] == 1 and out[0, 1] == -1
        assert list(out[1]) == [3, 4, 5]

"""Compiled-backend parity: bitwise-identical samples + charges.

The KernelBackend contract is that switching backends changes *speed
only*: every app, engine, and worker count must produce the identical
``SampleBatch`` (bitwise) and identical modeled charges, because the
compiled kernels consume the chunked RNG plan in exactly the numpy
draw order.  This file pins that contract:

* every differential app × {numba, cnative} × NextDoor (in-process)
* a representative app subset × {SP, TP}
* multi-chunk pooled runs at ``workers`` 1 and 2
* the ``repro verify --suite native`` wiring

The numba backend runs interpreted when numba isn't installed, which
is bit-identical by construction — so the parity proofs hold on hosts
with or without the JIT (CI runs both).
"""

import dataclasses
import hashlib

import numpy as np
import pytest

from repro.baselines import SampleParallelEngine, VanillaTPEngine
from repro.core.engine import NextDoorEngine
from repro.graph.generators import rmat_graph
from repro.native.backend import available_backends, backend_scope
from repro.verify.differential import DIFF_APPS, canonical_batch

COMPILED = [b for b in available_backends() if b != "numpy"]

_GRAPHS = {}


def _graph(weighted: bool):
    if weighted not in _GRAPHS:
        g = rmat_graph(256, 1024, seed=5, name="parity-rmat")
        _GRAPHS[weighted] = g.with_random_weights(seed=6) if weighted \
            else g
    return _GRAPHS[weighted]


def _snapshot(engine, app_name, weighted, num_samples=32, seed=23):
    app = DIFF_APPS[app_name]()
    result = engine.run(app, _graph(weighted),
                        num_samples=num_samples, seed=seed)
    canon = canonical_batch(app, result.batch)
    h = hashlib.sha256()
    for key in sorted(canon):
        h.update(key.encode())
        h.update(np.ascontiguousarray(canon[key]).tobytes())
    return h.hexdigest(), dataclasses.asdict(result.metrics)


@pytest.mark.parametrize("backend", COMPILED)
@pytest.mark.parametrize("app_name", sorted(DIFF_APPS))
class TestNextDoorParity:
    def test_digest_and_charges_match_numpy(self, app_name, backend):
        for weighted in (False, True):
            with backend_scope("numpy"):
                expected = _snapshot(NextDoorEngine(), app_name,
                                     weighted)
            with backend_scope(backend):
                actual = _snapshot(NextDoorEngine(), app_name, weighted)
            assert actual[0] == expected[0], \
                f"{app_name} samples diverged on {backend} " \
                f"(weighted={weighted})"
            assert actual[1] == expected[1], \
                f"{app_name} charges diverged on {backend} " \
                f"(weighted={weighted})"


@pytest.mark.parametrize("backend", COMPILED)
@pytest.mark.parametrize("engine_cls",
                         [SampleParallelEngine, VanillaTPEngine])
@pytest.mark.parametrize("app_name", ["DeepWalk", "k-hop", "LADIES"])
class TestBaselineEngineParity:
    def test_digest_and_charges_match_numpy(self, app_name, engine_cls,
                                            backend):
        weighted = app_name == "DeepWalk"
        with backend_scope("numpy"):
            expected = _snapshot(engine_cls(), app_name, weighted)
        with backend_scope(backend):
            actual = _snapshot(engine_cls(), app_name, weighted)
        assert actual == expected


@pytest.mark.parametrize("backend", COMPILED)
class TestPooledParity:
    """Multi-chunk runs so pool workers really execute kernels: the
    backend is inherited by every worker (broadcast in the run
    message), and digests must match numpy at the same worker count."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_deepwalk_multichunk(self, backend, workers):
        g = rmat_graph(1200, 7000, seed=9,
                       name="pool-rmat").with_random_weights(seed=9)
        app = DIFF_APPS["DeepWalk"]

        def run(name):
            with backend_scope(name):
                r = NextDoorEngine(workers=workers).run(
                    app(), g, num_samples=5000, seed=31)
            return ([a.copy() for a in r.batch.step_vertices],
                    dataclasses.asdict(r.metrics))

        base_steps, base_metrics = run("numpy")
        steps, metrics = run(backend)
        assert all(np.array_equal(a, b)
                   for a, b in zip(base_steps, steps))
        assert metrics == base_metrics


class TestVerifySuite:
    def test_native_suite_registered(self):
        from repro.verify.runner import SUITE_NAMES
        assert "native" in SUITE_NAMES

    def test_native_suite_passes_in_process(self):
        from repro.verify.native import _golden_checks
        for backend in COMPILED:
            results = _golden_checks(backend, workers=None)
            assert results and all(r.passed for r in results), \
                [str(r) for r in results if not r.passed]

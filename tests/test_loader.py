"""SampleLoader: the GNN mini-batch integration surface."""

import numpy as np
import pytest

from repro.api.apps import DeepWalk, KHop
from repro.baselines import ReferenceSamplerEngine
from repro.train.loader import MiniBatch, SampleLoader


class TestConstruction:
    def test_validation(self, medium_graph):
        with pytest.raises(ValueError):
            SampleLoader(medium_graph, KHop((4,)), batch_size=0)

    def test_empty_pool_rejected(self, medium_graph):
        with pytest.raises(ValueError):
            SampleLoader(medium_graph, KHop((4,)),
                         vertices=np.array([], dtype=np.int64))

    def test_len(self, medium_graph):
        loader = SampleLoader(medium_graph, KHop((4,)), batch_size=300,
                              vertices=np.arange(1000))
        assert len(loader) == 4
        loader = SampleLoader(medium_graph, KHop((4,)), batch_size=300,
                              vertices=np.arange(1000), drop_last=True)
        assert len(loader) == 3
        loader = SampleLoader(medium_graph, KHop((4,)), batch_size=500,
                              vertices=np.arange(1000))
        assert len(loader) == 2


class TestIteration:
    def test_batches_cover_pool(self, medium_graph):
        pool = np.arange(700)
        loader = SampleLoader(medium_graph, KHop((4,)), batch_size=256,
                              vertices=pool, seed=1)
        seen = np.concatenate([b.roots for b in loader.epoch(0)])
        assert sorted(seen.tolist()) == sorted(pool.tolist())

    def test_batch_contents(self, medium_graph):
        loader = SampleLoader(medium_graph, KHop((4, 2)), batch_size=64,
                              vertices=np.arange(128))
        batch = next(iter(loader))
        assert isinstance(batch, MiniBatch)
        assert batch.roots.shape == (64,)
        hop1, hop2 = batch.samples
        assert hop1.shape == (64, 4)
        assert hop2.shape == (64, 8)
        assert batch.sampling_seconds > 0

    def test_shuffle_changes_order_across_epochs(self, medium_graph):
        loader = SampleLoader(medium_graph, DeepWalk(2), batch_size=64,
                              vertices=np.arange(256), seed=3)
        first = next(iter(loader.epoch(0))).roots
        second = next(iter(loader.epoch(1))).roots
        assert not np.array_equal(first, second)

    def test_no_shuffle_keeps_order(self, medium_graph):
        pool = np.arange(100)
        loader = SampleLoader(medium_graph, DeepWalk(2), batch_size=40,
                              vertices=pool, shuffle=False)
        batches = list(loader.epoch(0))
        assert np.array_equal(batches[0].roots, pool[:40])
        assert batches[-1].roots.size == 20

    def test_drop_last(self, medium_graph):
        loader = SampleLoader(medium_graph, DeepWalk(2), batch_size=40,
                              vertices=np.arange(100), drop_last=True)
        batches = list(loader.epoch(0))
        assert len(batches) == 2
        assert all(b.roots.size == 40 for b in batches)

    def test_deterministic_given_seed(self, medium_graph):
        def run():
            loader = SampleLoader(medium_graph, DeepWalk(3),
                                  batch_size=64,
                                  vertices=np.arange(128), seed=9)
            return [b.samples for b in loader.epoch(0)]

        a, b = run(), run()
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_sampling_time_accumulates(self, medium_graph):
        loader = SampleLoader(medium_graph, DeepWalk(2), batch_size=64,
                              vertices=np.arange(128))
        list(loader.epoch(0))
        assert loader.total_sampling_seconds > 0

    def test_custom_engine(self, medium_graph):
        loader = SampleLoader(medium_graph, KHop((4,)),
                              engine=ReferenceSamplerEngine(),
                              batch_size=64, vertices=np.arange(64))
        batch = next(iter(loader))
        assert batch.samples[0].shape == (64, 4)

    def test_iter_advances_epochs(self, medium_graph):
        loader = SampleLoader(medium_graph, DeepWalk(2), batch_size=64,
                              vertices=np.arange(64), seed=2)
        a = next(iter(loader)).epoch
        b = next(iter(loader)).epoch
        assert b == a + 1

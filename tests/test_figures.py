"""SVG figure rendering from archived benchmark results."""

import os

import pytest

from repro.bench.figures import FIGURE_SPECS, bar_chart_svg, render_all


class TestBarChart:
    def test_valid_svg_structure(self):
        svg = bar_chart_svg("T", ["a", "b"], {"s1": [1.0, 2.0]})
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "T" in svg

    def test_one_rect_per_bar_plus_background_and_legend(self):
        svg = bar_chart_svg("T", ["a", "b", "c"],
                            {"s1": [1, 2, 3], "s2": [4, 5, 6]})
        # 6 bars + 1 background + 2 legend swatches.
        assert svg.count("<rect") == 9

    def test_group_labels_present(self):
        svg = bar_chart_svg("T", ["ppi", "orkut"], {"s": [1, 2]})
        assert "ppi" in svg and "orkut" in svg

    def test_log_scale_ticks(self):
        svg = bar_chart_svg("T", ["a"], {"s": [1000.0]}, log_scale=True)
        assert ">1<" in svg or ">1.00<" in svg
        assert ">1000<" in svg

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart_svg("T", [], {"s": []})
        with pytest.raises(ValueError):
            bar_chart_svg("T", ["a"], {"s": [1, 2]})

    def test_tooltips_carry_values(self):
        svg = bar_chart_svg("T", ["a"], {"serie": [42.0]})
        assert "serie / a: 42" in svg


class TestRenderAll:
    def test_renders_available_results(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig7a_vs_knightking.json").write_text(
            '{"DeepWalk": {"ppi": 17.5, "livej": 31.4}}')
        out = tmp_path / "figures"
        written = render_all(str(results), str(out))
        assert len(written) == 1
        assert os.path.exists(written[0])
        content = open(written[0]).read()
        assert "KnightKing" in content

    def test_missing_results_skipped(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        assert render_all(str(results), str(tmp_path / "f")) == []

    def test_nested_inner_key(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig7c_vs_sp_tp.json").write_text(
            '{"DeepWalk": {"ppi": {"SP": 1.5, "TP": 2.0}}}')
        written = render_all(str(results), str(tmp_path / "f"))
        assert len(written) == 1

    def test_every_spec_has_four_fields(self):
        for name, spec in FIGURE_SPECS.items():
            assert len(spec) == 4, name

"""The paper's Figure 2 worked example, executed.

Figure 2 walks three samples S1, S2, S3 through two steps of (b) 2-hop
neighborhood sampling and (c) layer sampling with m1 = m2 = 2 on a
small example graph.  These tests reconstruct an equivalent graph and
assert the *semantics* the figure illustrates:

- individual sampling: each step adds ``m`` vertices per transit, so
  sample sizes grow multiplicatively (1 -> 2 -> 4 vertices);
- collective sampling: each step adds ``m`` vertices per *sample*
  regardless of its transit count (1 -> 2 -> 4... no: 2 per step);
- step-1 vertices come from the root's neighborhood; step-2 vertices
  from the step-1 vertices' neighborhoods (individual) or their
  combined neighborhood (collective);
- the output contains all vertices sampled at all steps.
"""

import numpy as np
import pytest

from repro.api.apps import KHop, Layer
from repro.api.types import NULL_VERTEX
from repro.core.engine import NextDoorEngine
from repro.graph.csr import CSRGraph


@pytest.fixture
def figure2_graph():
    """A connected 7-vertex graph in the spirit of Figure 2a (the
    paper's exact adjacency is only partially legible in the text, so
    semantics — not vertex identities — are asserted)."""
    edges = [(1, 2), (1, 3), (2, 3), (2, 4), (3, 4), (4, 5), (4, 6),
             (5, 6), (6, 0), (0, 1)]
    return CSRGraph.from_edges(7, edges, undirected=True, name="fig2")


@pytest.fixture
def roots():
    """S1, S2, S3 start from single root vertices."""
    return np.array([[1], [2], [3]], dtype=np.int64)


class TestTwoHopExample:
    def test_growth_is_multiplicative(self, figure2_graph, roots):
        result = NextDoorEngine().run(KHop((2, 2)), figure2_graph,
                                      roots=roots, seed=0)
        hop1, hop2 = result.get_final_samples()
        assert hop1.shape == (3, 2)   # m1 = 2 per single transit
        assert hop2.shape == (3, 4)   # m2 = 2 per each of 2 transits

    def test_step1_from_root_neighborhood(self, figure2_graph, roots):
        result = NextDoorEngine().run(KHop((2, 2)), figure2_graph,
                                      roots=roots, seed=0)
        hop1 = result.get_final_samples()[0]
        for s in range(3):
            nbrs = set(figure2_graph.neighbors(int(roots[s, 0])).tolist())
            assert set(hop1[s].tolist()) <= nbrs

    def test_step1_vertices_become_transits(self, figure2_graph, roots):
        result = NextDoorEngine().run(KHop((2, 2)), figure2_graph,
                                      roots=roots, seed=0)
        hop1, hop2 = result.get_final_samples()
        for s in range(3):
            for t_idx in range(2):
                transit = int(hop1[s, t_idx])
                nbrs = set(figure2_graph.neighbors(transit).tolist())
                block = hop2[s, t_idx * 2:(t_idx + 1) * 2]
                assert set(block.tolist()) <= nbrs

    def test_output_contains_all_steps(self, figure2_graph, roots):
        result = NextDoorEngine().run(KHop((2, 2)), figure2_graph,
                                      roots=roots, seed=0)
        per_step = result.get_final_samples()
        flat = result.batch.as_array()
        assert flat.shape[1] == sum(a.shape[1] for a in per_step)


class TestLayerSamplingExample:
    def test_growth_is_per_sample(self, figure2_graph, roots):
        """Layer sampling adds m vertices per SAMPLE per step — the
        contrast Figure 2c draws against Figure 2b."""
        result = NextDoorEngine().run(Layer(step_size=2, max_size=4),
                                      figure2_graph, roots=roots, seed=0)
        batch = result.batch
        assert batch.step_vertices[0].shape == (3, 2)
        assert batch.step_vertices[1].shape == (3, 2)  # still 2, not 4

    def test_step2_from_combined_neighborhood(self, figure2_graph, roots):
        result = NextDoorEngine().run(Layer(step_size=2, max_size=4),
                                      figure2_graph, roots=roots, seed=0)
        batch = result.batch
        for s in range(3):
            combined = set()
            for t in batch.step_vertices[0][s]:
                if t != NULL_VERTEX:
                    combined.update(
                        figure2_graph.neighbors(int(t)).tolist())
            for v in batch.step_vertices[1][s]:
                if v != NULL_VERTEX:
                    assert int(v) in combined

    def test_stops_at_max_size(self, figure2_graph, roots):
        result = NextDoorEngine().run(Layer(step_size=2, max_size=4),
                                      figure2_graph, roots=roots, seed=0)
        sizes = (result.get_final_samples() != NULL_VERTEX).sum(axis=1)
        assert (sizes <= 4 + 2).all()

    def test_both_apps_agree_on_step1_support(self, figure2_graph, roots):
        """At step 1 both samplers draw from the same set (the root's
        neighborhood) — individual vs collective only differ once there
        are multiple transits."""
        khop = NextDoorEngine().run(KHop((2, 2)), figure2_graph,
                                    roots=roots, seed=0)
        layer = NextDoorEngine().run(Layer(step_size=2, max_size=4),
                                     figure2_graph, roots=roots, seed=1)
        for s in range(3):
            nbrs = set(figure2_graph.neighbors(int(roots[s, 0])).tolist())
            assert set(khop.get_final_samples()[0][s].tolist()) <= nbrs
            step1 = layer.batch.step_vertices[0][s]
            assert set(step1[step1 != NULL_VERTEX].tolist()) <= nbrs

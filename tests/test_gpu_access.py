"""Exact access analysis, and validation of the planner's formulas."""

import numpy as np
import pytest

from repro.gpu.access import (
    coalesced_run_segments,
    expected_segments_random_picks,
    segments_touched,
    warp_transactions,
)


class TestSegmentsTouched:
    def test_empty(self):
        assert segments_touched(np.array([], dtype=np.int64)) == 0

    def test_same_segment(self):
        assert segments_touched(np.array([0, 1, 2, 3])) == 1

    def test_adjacent_segments(self):
        assert segments_touched(np.array([3, 4])) == 2

    def test_duplicates_collapse(self):
        assert segments_touched(np.array([100, 100, 101])) == 1

    def test_scattered(self):
        addrs = np.arange(32) * 1000
        assert segments_touched(addrs) == 32


class TestWarpTransactions:
    def test_fully_coalesced_warp(self):
        # 32 consecutive words = 8 segments.
        assert warp_transactions(np.arange(32)) == 8

    def test_fully_scattered_warp(self):
        assert warp_transactions(np.arange(32) * 64) == 32

    def test_two_warps_independent(self):
        # Both warps read the SAME 8 segments, but coalescing is
        # per-warp: 8 + 8.
        addrs = np.concatenate([np.arange(32), np.arange(32)])
        assert warp_transactions(addrs) == 16

    def test_partial_warp(self):
        assert warp_transactions(np.arange(4)) == 1


class TestCoalescedRun:
    def test_aligned(self):
        assert coalesced_run_segments(0, 32) == 8

    def test_misaligned_adds_one(self):
        assert coalesced_run_segments(2, 32) == 9

    def test_zero(self):
        assert coalesced_run_segments(5, 0) == 0


class TestExpectedSegments:
    def test_zero_cases(self):
        assert expected_segments_random_picks(0, 5) == 0.0
        assert expected_segments_random_picks(5, 0) == 0.0

    def test_one_pick_one_segment_row(self):
        assert expected_segments_random_picks(4, 1) == pytest.approx(1.0)

    def test_many_picks_saturate(self):
        # 64-word row = 16 segments; 10k picks touch all of them.
        assert expected_segments_random_picks(64, 10000) \
            == pytest.approx(16.0, rel=1e-3)

    def test_matches_monte_carlo(self, rng):
        for degree, picks in [(13, 3), (40, 8), (100, 2), (7, 20)]:
            trials = []
            for _ in range(400):
                draws = rng.integers(0, degree, size=picks)
                trials.append(segments_touched(draws))
            empirical = np.mean(trials)
            exact = expected_segments_random_picks(degree, picks)
            assert exact == pytest.approx(empirical, rel=0.1)


class TestVectorisedExpectation:
    def test_matches_scalar(self):
        import numpy as np
        from repro.gpu.access import expected_segments_random_picks_vec
        degrees = np.array([13, 40, 100, 7, 4, 0])
        picks = np.array([3, 8, 2, 20, 4, 5])
        vec = expected_segments_random_picks_vec(degrees, picks)
        for i in range(degrees.size):
            assert vec[i] == pytest.approx(
                expected_segments_random_picks(int(degrees[i]),
                                               int(picks[i])))

    def test_zero_picks_row(self):
        import numpy as np
        from repro.gpu.access import expected_segments_random_picks_vec
        out = expected_segments_random_picks_vec(np.array([10, 10]),
                                                 np.array([0, 3]))
        assert out[0] == 0.0
        assert out[1] > 0.0

    def test_empty_arrays(self):
        import numpy as np
        from repro.gpu.access import expected_segments_random_picks_vec
        out = expected_segments_random_picks_vec(
            np.zeros(0), np.zeros(0))
        assert out.shape == (0,)


class TestPlannerFormulaValidity:
    """The scheduling planner charges ``min(picks, ceil(d/4))``
    segments per transit.  That must upper-bound the exact expectation
    and stay within 2.5x of it across realistic regimes — otherwise
    Figure 8's transaction ratios would be fiction."""

    @pytest.mark.parametrize("degree", [2, 5, 13, 28, 39, 120, 1000])
    @pytest.mark.parametrize("picks", [1, 2, 4, 10, 32])
    def test_planner_bound(self, degree, picks):
        import math
        planner = min(picks, math.ceil(degree / 4))
        exact = expected_segments_random_picks(degree, picks)
        assert planner >= exact * 0.99  # upper bound (FP slack)
        assert planner <= max(exact * 2.5, exact + 1.0)  # not wildly over

"""Property-based tests (hypothesis) on core data structures.

These pin the invariants the whole system rests on: CSR structure,
transit-map grouping, dedup, and the sampling primitives' validity for
arbitrary inputs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.apps._kernels import (
    build_combined_neighborhood,
    segment_uniform_choice,
    uniform_neighbors,
    weighted_neighbors,
)
from repro.api.types import NULL_VERTEX
from repro.core.scheduling import classify_transits
from repro.core.transit_map import build_transit_map
from repro.core.unique import dedupe_rows
from repro.graph.csr import CSRGraph


@st.composite
def edge_lists(draw, max_vertices=24, max_edges=60):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    edges = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=max_edges))
    return n, edges


@st.composite
def graphs(draw):
    n, edges = draw(edge_lists())
    return CSRGraph.from_edges(n, edges)


@st.composite
def weighted_graphs(draw):
    n, edges = draw(edge_lists())
    weights = [draw(st.floats(0.1, 10.0)) for _ in edges]
    return CSRGraph.from_edges(n, edges, weights=weights)


class TestCSRProperties:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_structure_invariants(self, data):
        n, edges = data
        g = CSRGraph.from_edges(n, edges)
        assert g.indptr[0] == 0
        assert g.indptr[-1] == g.num_edges
        assert (np.diff(g.indptr) >= 0).all()
        assert g.degrees().sum() == g.num_edges
        for v in range(n):
            row = g.neighbors(v)
            assert (np.diff(row) >= 0).all()

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_every_input_edge_present(self, data):
        n, edges = data
        g = CSRGraph.from_edges(n, edges)
        for u, v in edges:
            assert g.has_edge(u, v)

    @given(graphs(), st.integers(0, 2 ** 31))
    @settings(max_examples=40, deadline=None)
    def test_has_edges_matches_naive(self, g, seed):
        rng = np.random.default_rng(seed)
        u = rng.integers(0, g.num_vertices, size=30)
        v = rng.integers(0, g.num_vertices, size=30)
        fast = g.has_edges(u, v)
        naive = np.array([int(vv) in g.neighbors(int(uu)).tolist()
                          for uu, vv in zip(u, v)])
        assert np.array_equal(fast, naive)

    @given(weighted_graphs())
    @settings(max_examples=40, deadline=None)
    def test_weight_prefix_monotone_per_row(self, g):
        prefix = g.weight_prefix()
        for v in range(g.num_vertices):
            row = prefix[g.indptr[v]:g.indptr[v + 1]]
            assert (np.diff(row) >= -1e-12).all()

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_subgraph_edges_subset(self, g):
        keep = np.arange(0, g.num_vertices, 2)
        sub = g.subgraph(keep)
        degrees = np.diff(sub.indptr)
        src = np.repeat(np.arange(sub.num_vertices), degrees)
        for u, v in zip(src, sub.indices):
            assert g.has_edge(int(keep[u]), int(keep[v]))


class TestSamplingPrimitiveProperties:
    @given(graphs(), st.integers(0, 2 ** 31), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_uniform_neighbors_validity(self, g, seed, m):
        rng = np.random.default_rng(seed)
        transits = rng.integers(-1, g.num_vertices, size=20)
        out = uniform_neighbors(g, transits, m, rng)
        assert out.shape == (20, m)
        for k, t in enumerate(transits):
            for v in out[k]:
                if t == NULL_VERTEX or g.degree(int(t)) == 0:
                    assert v == NULL_VERTEX
                else:
                    assert v != NULL_VERTEX
                    assert g.has_edge(int(t), int(v))

    @given(weighted_graphs(), st.integers(0, 2 ** 31))
    @settings(max_examples=40, deadline=None)
    def test_weighted_neighbors_validity(self, g, seed):
        rng = np.random.default_rng(seed)
        transits = rng.integers(0, g.num_vertices, size=20)
        out = weighted_neighbors(g, transits, 1, rng)
        for k, t in enumerate(transits):
            v = out[k, 0]
            if g.degree(int(t)) > 0:
                assert g.has_edge(int(t), int(v))

    @given(st.integers(0, 2 ** 31), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_segment_choice_stays_in_segment(self, seed, m):
        rng = np.random.default_rng(seed)
        sizes = rng.integers(0, 8, size=10)
        offsets = np.zeros(11, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        values = rng.integers(100, 200, size=int(offsets[-1]))
        out = segment_uniform_choice(values, offsets, m, rng)
        for s in range(10):
            segment = set(values[offsets[s]:offsets[s + 1]].tolist())
            for v in out[s]:
                if sizes[s] == 0:
                    assert v == NULL_VERTEX
                else:
                    assert int(v) in segment

    @given(graphs(), st.integers(0, 2 ** 31))
    @settings(max_examples=30, deadline=None)
    def test_combined_neighborhood_is_exact_multiset(self, g, seed):
        rng = np.random.default_rng(seed)
        transits = rng.integers(-1, g.num_vertices, size=(4, 3))
        values, offsets = build_combined_neighborhood(g, transits)
        for s in range(4):
            expected = []
            for t in transits[s]:
                if t != NULL_VERTEX:
                    expected.extend(g.neighbors(int(t)).tolist())
            got = values[offsets[s]:offsets[s + 1]].tolist()
            assert sorted(got) == sorted(expected)


class TestTransitMapProperties:
    @given(st.integers(0, 2 ** 31), st.integers(1, 50), st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_grouping_partition(self, seed, num_samples, width):
        rng = np.random.default_rng(seed)
        transits = rng.integers(-1, 20, size=(num_samples, width))
        tmap = build_transit_map(transits)
        # Counts sum to live pairs; every live pair appears once.
        live = (transits != NULL_VERTEX).sum()
        assert tmap.num_pairs == live
        assert tmap.counts.sum() == live
        # Scatter back reproduces the input exactly.
        rebuilt = np.full_like(transits, NULL_VERTEX)
        rebuilt[tmap.sample_ids, tmap.cols] = tmap.transit_vals
        assert np.array_equal(rebuilt, transits)

    @given(st.integers(0, 2 ** 31), st.integers(1, 32))
    @settings(max_examples=50, deadline=None)
    def test_classes_partition_transits(self, seed, m):
        rng = np.random.default_rng(seed)
        counts = rng.integers(1, 5000, size=30)
        classes = classify_transits(counts, m)
        combined = sorted(np.concatenate(list(classes.values())).tolist())
        assert combined == list(range(30))


class TestDedupProperties:
    @given(st.integers(0, 2 ** 31), st.integers(1, 20), st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_dedupe_invariants(self, seed, rows, width):
        rng = np.random.default_rng(seed)
        arr = rng.integers(-1, 6, size=(rows, width))
        out, dups = dedupe_rows(arr)
        for r in range(rows):
            live = out[r][out[r] != NULL_VERTEX]
            # No duplicates remain.
            assert np.unique(live).size == live.size
            # Every surviving value was present in the input row.
            assert set(live.tolist()) <= set(arr[r].tolist())
            # Every distinct input value survives somewhere.
            distinct_in = set(arr[r][arr[r] != NULL_VERTEX].tolist())
            assert distinct_in == set(live.tolist())

    @given(st.integers(0, 2 ** 31))
    @settings(max_examples=30, deadline=None)
    def test_dedupe_idempotent(self, seed):
        rng = np.random.default_rng(seed)
        arr = rng.integers(-1, 5, size=(6, 8))
        once, _ = dedupe_rows(arr)
        twice, dups = dedupe_rows(once)
        assert dups == 0
        assert np.array_equal(once, twice)

"""Benchmark harness utilities."""

import json
import os

import pytest

from repro.bench import report, runner


class TestFormatTable:
    def test_alignment(self):
        table = report.format_table(["a", "bb"], [["x", 1.5], ["yy", 2.0]])
        lines = table.split("\n")
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_float_precision(self):
        table = report.format_table(["v"], [[1.23456]], precision=3)
        assert "1.235" in table

    def test_empty_rows(self):
        table = report.format_table(["a", "b"], [])
        assert "a" in table

    def test_print_experiment(self, capsys):
        report.print_experiment("Title", "table-body", notes=["a note"])
        out = capsys.readouterr().out
        assert "Title" in out
        assert "table-body" in out
        assert "a note" in out


class TestSaveResults:
    def test_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setattr(report, "RESULTS_DIR", str(tmp_path))
        path = report.save_results("exp", {"x": 1.5})
        with open(path) as f:
            assert json.load(f) == {"x": 1.5}

    def test_creates_directory(self, tmp_path, monkeypatch):
        target = tmp_path / "nested"
        monkeypatch.setattr(report, "RESULTS_DIR", str(target))
        report.save_results("exp", {})
        assert target.exists()


class TestRunnerConfigs:
    def test_paper_parameters(self):
        assert runner.paper_app("DeepWalk").walk_length == 100
        assert runner.paper_app("PPR").termination_prob == pytest.approx(0.01)
        n2v = runner.paper_app("node2vec")
        assert n2v.p == 2.0 and n2v.q == 0.5
        assert runner.paper_app("MultiRW").num_roots == 100
        assert runner.paper_app("k-hop").fanouts == (25, 10)
        layer = runner.paper_app("Layer")
        assert layer.step_size == 1000 and layer.max_size == 2000
        assert runner.paper_app("FastGCN").step_size == 64
        assert runner.paper_app("ClusterGCN").clusters_per_sample == 20

    def test_every_factory_constructs(self):
        for name in runner.APP_FACTORIES:
            assert runner.paper_app(name) is not None

    def test_walks_get_weighted_graphs(self):
        g = runner.paper_graph("ppi", "DeepWalk")
        assert g.is_weighted
        g2 = runner.paper_graph("ppi", "k-hop")
        assert not g2.is_weighted

    def test_walk_sample_count(self):
        g = runner.paper_graph("ppi", "DeepWalk")
        assert runner.walk_sample_count(g, "DeepWalk") == \
            min(g.num_vertices, 20000)
        assert runner.walk_sample_count(g, "k-hop") == 8192
        assert runner.walk_sample_count(g, "ClusterGCN") == 64

    def test_run_engine_cell(self):
        from repro.core.engine import NextDoorEngine
        result = runner.run_engine(NextDoorEngine(), "k-hop", "ppi",
                                   seed=0, num_samples=16)
        assert result.batch.num_samples == 16

"""Random-walk applications: correctness of the sampled distributions."""

import numpy as np
import pytest

from repro.api.apps import DeepWalk, MultiRW, Node2Vec, PPR
from repro.api.types import NULL_VERTEX, SamplingType
from repro.core.engine import NextDoorEngine


def walk_edges_valid(graph, roots, walks):
    """Every consecutive (non-NULL) pair in a walk must be an edge."""
    full = np.concatenate([roots, walks], axis=1)
    for row in full:
        prev = None
        for v in row:
            if v == NULL_VERTEX:
                break
            if prev is not None:
                assert graph.has_edge(int(prev), int(v)), (prev, v)
            prev = v


class TestDeepWalk:
    def test_parameters_validate(self):
        with pytest.raises(ValueError):
            DeepWalk(walk_length=0)

    def test_walk_is_a_path(self, medium_graph):
        result = NextDoorEngine().run(DeepWalk(walk_length=12),
                                      medium_graph, num_samples=64, seed=0)
        walk_edges_valid(medium_graph, result.batch.roots,
                         result.get_final_samples())

    def test_walk_length(self, medium_graph):
        result = NextDoorEngine().run(DeepWalk(walk_length=12),
                                      medium_graph, num_samples=64, seed=0)
        assert result.get_final_samples().shape == (64, 12)

    def test_weighted_bias(self, rng):
        """On a 2-neighbor vertex with weights 9:1, the heavy edge is
        taken ~90% of the time."""
        from repro.graph.csr import CSRGraph
        g = CSRGraph.from_edges(3, [(0, 1), (0, 2), (1, 0), (2, 0)],
                                weights=[9.0, 1.0, 1.0, 1.0])
        app = DeepWalk(walk_length=1)
        transits = np.zeros(4000, dtype=np.int64)
        out, _ = app.sample_neighbors(g, transits, 0, rng)
        frac = (out[:, 0] == 1).mean()
        assert 0.85 < frac < 0.95

    def test_unweighted_uniform(self, rng, star_graph):
        app = DeepWalk(walk_length=1)
        transits = np.zeros(6400, dtype=np.int64)
        out, _ = app.sample_neighbors(star_graph, transits, 0, rng)
        counts = np.bincount(out[:, 0], minlength=33)[1:]
        assert counts.min() > 0.5 * counts.mean()

    def test_reference_matches_distribution(self, tiny_weighted, rng):
        app = DeepWalk(walk_length=1)
        transits = np.zeros(3000, dtype=np.int64)
        fast, _ = app.sample_neighbors(tiny_weighted, transits, 0, rng)
        from repro.api.sample import SampleBatch
        batch = SampleBatch(tiny_weighted, np.zeros((3000, 1), np.int64))
        from repro.api.app import SamplingApp
        ref, _ = SamplingApp.sample_neighbors(
            app, tiny_weighted, transits, 0, rng, batch=batch,
            sample_ids=np.arange(3000))
        for v in tiny_weighted.neighbors(0):
            fast_frac = (fast == v).mean()
            ref_frac = (ref == v).mean()
            assert abs(fast_frac - ref_frac) < 0.06


class TestPPR:
    def test_parameters_validate(self):
        with pytest.raises(ValueError):
            PPR(termination_prob=0.0)
        with pytest.raises(ValueError):
            PPR(termination_prob=1.5)

    def test_walks_terminate(self, medium_graph):
        result = NextDoorEngine().run(PPR(termination_prob=0.2,
                                          max_steps=200),
                                      medium_graph, num_samples=256, seed=0)
        assert result.steps_run < 200

    def test_mean_length_matches_termination(self, medium_graph):
        result = NextDoorEngine().run(PPR(termination_prob=0.2,
                                          max_steps=300),
                                      medium_graph, num_samples=2000, seed=0)
        walks = result.get_final_samples()
        lengths = (walks != NULL_VERTEX).sum(axis=1)
        # Geometric with p=0.2: mean 1/p = 5 (zero-degree deaths push
        # it slightly lower).
        assert 2.5 < lengths.mean() < 6.0

    def test_dead_walks_stay_dead(self, medium_graph):
        result = NextDoorEngine().run(PPR(termination_prob=0.3,
                                          max_steps=100),
                                      medium_graph, num_samples=256, seed=0)
        walks = result.get_final_samples()
        for row in walks:
            seen_null = False
            for v in row:
                if v == NULL_VERTEX:
                    seen_null = True
                elif seen_null:
                    pytest.fail("walk resurrected after termination")

    def test_steps_return_inf(self):
        from repro.api.types import INF_STEPS
        assert PPR().steps() == INF_STEPS


class TestNode2Vec:
    def test_parameters_validate(self):
        with pytest.raises(ValueError):
            Node2Vec(p=0.0)
        with pytest.raises(ValueError):
            Node2Vec(q=-1.0)

    def test_walk_is_a_path(self, medium_graph):
        result = NextDoorEngine().run(Node2Vec(walk_length=10),
                                      medium_graph, num_samples=64, seed=0)
        walk_edges_valid(medium_graph, result.batch.roots,
                         result.get_final_samples())

    def test_needs_prev_transits(self):
        assert Node2Vec().needs_prev_transits

    def test_info_reports_rejection_work(self, medium_graph, rng):
        app = Node2Vec(p=2.0, q=0.5)
        transits = rng.integers(0, medium_graph.num_vertices, 512)
        prev = rng.integers(0, medium_graph.num_vertices, 512)
        out, info = app.sample_neighbors(medium_graph, transits, 1, rng,
                                         prev_transits=prev)
        assert info.neighbor_reads_per_vertex >= 1.0
        assert info.extra_global_reads_per_vertex > 0.0

    def test_backtrack_bias(self, rng):
        """The paper's case (i): ``u == t`` carries probability ``p``,
        so large p means frequent backtracking, small p rare."""
        from repro.graph.csr import CSRGraph
        # Transit 1 has neighbors {0, 2, 3, 4, 5}; previous transit 0.
        edges = [(1, 0), (1, 2), (1, 3), (1, 4), (1, 5)]
        g = CSRGraph.from_edges(6, edges, undirected=True)
        transits = np.full(4000, 1, dtype=np.int64)
        prev = np.zeros(4000, dtype=np.int64)
        biased = Node2Vec(p=50.0, q=1.0)
        out, _ = biased.sample_neighbors(g, transits, 1, rng,
                                         prev_transits=prev)
        backtrack_hi = (out[:, 0] == 0).mean()
        avoider = Node2Vec(p=0.02, q=1.0)
        out2, _ = avoider.sample_neighbors(g, transits, 1, rng,
                                           prev_transits=prev)
        backtrack_lo = (out2[:, 0] == 0).mean()
        # Uniform would give 0.2; the bias pulls far away on each side.
        assert backtrack_hi > 0.5
        assert backtrack_lo < 0.1
        assert backtrack_lo < backtrack_hi

    def test_first_step_uniform(self, star_graph, rng):
        app = Node2Vec()
        transits = np.zeros(3200, dtype=np.int64)
        out, _ = app.sample_neighbors(star_graph, transits, 0, rng,
                                      prev_transits=None)
        assert (out != NULL_VERTEX).all()


class TestMultiRW:
    def test_parameters_validate(self):
        with pytest.raises(ValueError):
            MultiRW(num_roots=0)

    def test_roots_per_sample(self, medium_graph):
        result = NextDoorEngine().run(MultiRW(num_roots=7, walk_length=5),
                                      medium_graph, num_samples=16, seed=0)
        assert result.batch.roots.shape == (16, 7)

    def test_sampled_vertex_replaces_root(self, medium_graph):
        app = MultiRW(num_roots=5, walk_length=10)
        result = NextDoorEngine().run(app, medium_graph, num_samples=32,
                                      seed=0)
        live = result.batch.state["roots"]
        original = result.batch.roots
        # After 10 steps the live root set differs from the original.
        assert not np.array_equal(live, original)
        assert live.shape == original.shape

    def test_transits_come_from_live_roots(self, medium_graph, rng):
        from repro.core import stepper
        app = MultiRW(num_roots=5, walk_length=3)
        batch = stepper.init_batch(app, medium_graph, 16, None, rng)
        transits = app.transits_for_step(batch, 0)
        roots = batch.state["roots"]
        for s in range(16):
            assert transits[s, 0] in roots[s]

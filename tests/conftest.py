"""Shared fixtures: small deterministic graphs every suite reuses."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_graph


@pytest.fixture
def tiny_graph():
    """The 7-vertex graph sketched in the paper's Figure 2a-style
    examples: small enough to check samples by hand."""
    edges = [
        (0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4),
        (4, 5), (5, 6), (2, 5), (1, 6),
    ]
    return CSRGraph.from_edges(7, edges, undirected=True, name="tiny")


@pytest.fixture
def tiny_weighted(tiny_graph):
    return tiny_graph.with_random_weights(seed=7)


@pytest.fixture
def star_graph():
    """Vertex 0 connected to everything: maximal transit sharing."""
    edges = [(0, i) for i in range(1, 33)]
    return CSRGraph.from_edges(33, edges, undirected=True, name="star")


@pytest.fixture
def chain_graph():
    """A path: every internal vertex has degree 2, no hubs."""
    edges = [(i, i + 1) for i in range(63)]
    return CSRGraph.from_edges(64, edges, undirected=True, name="chain")


@pytest.fixture(scope="session")
def medium_graph():
    """A power-law graph big enough for statistical checks."""
    return rmat_graph(2000, 12000, seed=11, name="medium")


@pytest.fixture(scope="session")
def medium_weighted(medium_graph):
    return medium_graph.with_random_weights(seed=5)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)

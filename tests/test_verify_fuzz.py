"""API fuzzing: degenerate graphs, RandomApp, and hypothesis drive.

The hypothesis cases run derandomized (fixed example sequence) so CI is
reproducible; the open-ended seeded sweep is stat-marked.
"""

import numpy as np
import pytest

from repro.api.apps import DeepWalk, KHop
from repro.core.engine import NextDoorEngine
from repro.verify.fuzz import (
    RandomApp,
    degenerate_graphs,
    fuzz_case,
    random_app,
    random_graph,
    run_fuzz_checks,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

FUZZ_SETTINGS = settings(
    max_examples=10, deadline=None, derandomize=True,
    suppress_health_check=[HealthCheck.too_slow])


class TestDegenerateGraphs:
    def test_pool_contains_expected_shapes(self):
        names = set(degenerate_graphs())
        assert {"empty", "single_vertex", "self_loops", "isolated",
                "duplicate_edges", "star", "path"} <= names

    def test_empty_graph_rejected_cleanly(self):
        g = degenerate_graphs()["empty"]
        with pytest.raises(ValueError):
            NextDoorEngine().run(DeepWalk(4), g, num_samples=4, seed=0)
        result = fuzz_case(DeepWalk(4), g, seed=0)
        assert result.passed
        assert "clean reject" in result.detail

    def test_single_vertex_rejected_cleanly(self):
        result = fuzz_case(DeepWalk(4),
                           degenerate_graphs()["single_vertex"], seed=0)
        assert result.passed and "clean reject" in result.detail

    @pytest.mark.parametrize("name", ["self_loops", "isolated",
                                      "duplicate_edges", "star", "path"])
    def test_usable_degenerates_pass(self, name):
        result = fuzz_case(DeepWalk(walk_length=4),
                           degenerate_graphs()[name], seed=3)
        assert result.passed, result.detail

    def test_khop_on_star(self):
        result = fuzz_case(KHop(fanouts=(3, 2)),
                           degenerate_graphs()["star"], seed=1)
        assert result.passed, result.detail


class TestRandomApp:
    def test_valid_construction(self):
        app = RandomApp(sample_sizes=[2, 1, 3],
                        unique_flags=[True, False, True])
        assert app.steps() == 3
        assert app.sample_size(2) == 3
        assert app.unique(0) and not app.unique(1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RandomApp(sample_sizes=[], unique_flags=[])

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            RandomApp(sample_sizes=[2, 0], unique_flags=[False, False])

    def test_rejects_mismatched_flags(self):
        with pytest.raises(ValueError):
            RandomApp(sample_sizes=[1, 1], unique_flags=[True])

    def test_generators_are_seeded(self):
        a = random_app(np.random.default_rng(9))
        b = random_app(np.random.default_rng(9))
        assert repr(a) == repr(b)
        ga = random_graph(np.random.default_rng(9))
        gb = random_graph(np.random.default_rng(9))
        assert ga.name == gb.name
        assert ga.num_edges == gb.num_edges


class TestHypothesisFuzz:
    @FUZZ_SETTINGS
    @given(sizes=st.lists(st.integers(min_value=1, max_value=3),
                          min_size=1, max_size=3),
           uniques=st.lists(st.booleans(), min_size=3, max_size=3),
           seed=st.integers(min_value=0, max_value=2 ** 16))
    def test_random_app_properties_hold(self, sizes, uniques, seed):
        app = RandomApp(sample_sizes=sizes,
                        unique_flags=uniques[:len(sizes)])
        graph = random_graph(np.random.default_rng(seed))
        result = fuzz_case(app, graph, seed=seed, num_samples=8)
        assert result.passed, result.detail

    @FUZZ_SETTINGS
    @given(draw_seed=st.integers(min_value=0, max_value=2 ** 16),
           case_seed=st.integers(min_value=0, max_value=2 ** 16))
    def test_random_builtin_properties_hold(self, draw_seed, case_seed):
        rng = np.random.default_rng(draw_seed)
        result = fuzz_case(random_app(rng), random_graph(rng),
                           seed=case_seed, num_samples=8)
        assert result.passed, result.detail


@pytest.mark.stat
class TestFuzzSweep:
    def test_seeded_sweep_passes(self):
        results = run_fuzz_checks(seed=0, cases=24)
        assert len(results) == 7 + 24
        failures = [str(r) for r in results if not r.passed]
        assert not failures, "\n".join(failures)

    def test_sweep_is_deterministic(self):
        a = [r.name for r in run_fuzz_checks(seed=5, cases=4)]
        b = [r.name for r in run_fuzz_checks(seed=5, cases=4)]
        assert a == b

"""FastGCN-style training on recorded layer matrices."""

import numpy as np
import pytest

from repro.train.gcn import FastGCNModel, FastGCNTrainer


class TestFastGCNModel:
    def test_forward_shapes(self, rng):
        model = FastGCNModel(8, 16, 3, seed=0)
        feats = rng.normal(size=(12, 8))     # hop-2 vertices
        a1 = rng.random((6, 12))             # hop1 x hop2
        a0 = rng.random((4, 6))              # roots x hop1
        logits = model.forward(feats, a1, a0)
        assert logits.shape == (4, 3)

    def test_training_reduces_loss_on_fixed_batch(self, rng):
        model = FastGCNModel(8, 16, 3, seed=0)
        feats = rng.normal(size=(12, 8))
        labels = rng.integers(0, 3, size=4)
        a1 = rng.random((6, 12))
        a0 = rng.random((4, 6))
        first = model.train_step(feats, a1, a0, labels, lr=0.3)
        for _ in range(80):
            last = model.train_step(feats, a1, a0, labels, lr=0.3)
        assert last < first


class TestFastGCNTrainer:
    def test_epoch_produces_finite_loss(self, medium_graph):
        trainer = FastGCNTrainer(medium_graph, step_size=24,
                                 batch_size=16, seed=0)
        loss, acc = trainer.run_epoch(0, batches=4)
        assert np.isfinite(loss)
        assert 0.0 <= acc <= 1.0

    def test_training_beats_chance(self, medium_graph):
        trainer = FastGCNTrainer(medium_graph, feature_dim=16,
                                 hidden_dim=32, num_classes=4,
                                 step_size=32, batch_size=32, seed=0)
        history = trainer.train(epochs=6, batches_per_epoch=6)
        final_acc = np.mean([acc for _, acc in history[-2:]])
        assert final_acc > 0.3  # chance is 0.25

    def test_sample_batch_alignment(self, medium_graph):
        trainer = FastGCNTrainer(medium_graph, step_size=24,
                                 batch_size=16, seed=0)
        batch = trainer._sample_batch(seed=3)
        assert batch is not None
        # a0: roots x hop1(common), a1: hop1(common) x hop2.
        assert batch.a0.shape[1] == batch.a1.shape[0]
        assert batch.a1.shape[1] == batch.features_l2.shape[0]
        assert batch.roots.size == batch.a0.shape[0]

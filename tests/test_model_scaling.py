"""Sanity properties of the performance model itself.

These pin the *monotonicity* every experiment relies on: more work
costs more, bigger graphs cost more, and the model never produces
negative or zero costs for non-trivial runs.  A regression here would
silently distort every figure.
"""

import numpy as np
import pytest

from repro.api.apps import DeepWalk, KHop
from repro.core.engine import NextDoorEngine
from repro.baselines import KnightKingEngine, SampleParallelEngine
from repro.graph.generators import rmat_graph


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(4000, 40000, seed=2, name="scaling")


class TestWorkMonotonicity:
    def test_time_grows_with_walkers(self, graph):
        times = []
        for n in (1000, 4000, 16000):
            r = NextDoorEngine().run(DeepWalk(20), graph,
                                     num_samples=n, seed=0)
            times.append(r.seconds)
        assert times[0] < times[1] < times[2]

    def test_time_grows_with_walk_length(self, graph):
        short = NextDoorEngine().run(DeepWalk(5), graph,
                                     num_samples=2000, seed=0)
        long = NextDoorEngine().run(DeepWalk(50), graph,
                                    num_samples=2000, seed=0)
        assert long.seconds > 5 * short.seconds

    def test_time_grows_with_fanout(self, graph):
        small = NextDoorEngine().run(KHop((5, 5)), graph,
                                     num_samples=2000, seed=0)
        big = NextDoorEngine().run(KHop((25, 10)), graph,
                                   num_samples=2000, seed=0)
        assert big.seconds > small.seconds

    def test_large_runs_become_throughput_bound(self, graph):
        """Per-walker cost must *fall* as walkers grow (span floor is
        amortised), then flatten — never rise."""
        per_walker = []
        for n in (500, 4000, 32000):
            r = NextDoorEngine().run(DeepWalk(10), graph,
                                     num_samples=n, seed=0)
            per_walker.append(r.seconds / n)
        assert per_walker[0] > per_walker[1] >= per_walker[2] * 0.8

    def test_cpu_engine_linear_in_walkers(self, graph):
        a = KnightKingEngine().run(DeepWalk(10), graph,
                                   num_samples=2000, seed=0)
        b = KnightKingEngine().run(DeepWalk(10), graph,
                                   num_samples=8000, seed=0)
        assert b.seconds == pytest.approx(4 * a.seconds, rel=0.3)


class TestCostsAreSane:
    def test_no_zero_cost_runs(self, graph):
        for engine in (NextDoorEngine(), SampleParallelEngine(),
                       KnightKingEngine()):
            r = engine.run(DeepWalk(3), graph, num_samples=64, seed=0)
            assert r.seconds > 0

    def test_counters_scale_with_work(self, graph):
        small = NextDoorEngine().run(DeepWalk(5), graph,
                                     num_samples=1000, seed=0)
        big = NextDoorEngine().run(DeepWalk(5), graph,
                                   num_samples=8000, seed=0)
        assert (big.metrics.counters.global_load_transactions
                > 3 * small.metrics.counters.global_load_transactions)

    def test_transit_sharing_reduces_relative_loads(self, graph):
        """With 8x the walkers on the same graph, transits are shared
        8x more, so ND's loads per produced vertex must drop."""
        def loads_per_vertex(n):
            r = NextDoorEngine().run(DeepWalk(10), graph,
                                     num_samples=n, seed=0)
            produced = (r.get_final_samples() != -1).sum()
            return r.metrics.counters.global_load_transactions / produced

        assert loads_per_vertex(16000) < loads_per_vertex(2000)

    def test_sp_loads_insensitive_to_sharing(self, graph):
        """SP cannot exploit sharing: its per-vertex loads stay flat."""
        def loads_per_vertex(n):
            r = SampleParallelEngine().run(DeepWalk(10), graph,
                                           num_samples=n, seed=0)
            produced = (r.get_final_samples() != -1).sum()
            return r.metrics.counters.global_load_transactions / produced

        a, b = loads_per_vertex(2000), loads_per_vertex(16000)
        assert b == pytest.approx(a, rel=0.15)

"""SamplingApp base class: defaults and the reference path."""

import numpy as np
import pytest

from repro.api.app import SamplingApp
from repro.api.sample import SampleBatch
from repro.api.types import NULL_VERTEX, SamplingType
from repro.api.vertex import Vertex


class FirstNeighbor(SamplingApp):
    """Deterministic custom app: always takes the smallest neighbor."""

    name = "first-neighbor"

    def steps(self):
        return 3

    def sample_size(self, step):
        return 1

    def next(self, sample, transits, src_edges, step, rng):
        if src_edges.size == 0:
            return NULL_VERTEX
        return int(src_edges[0])


class TestDefaults:
    def test_sampling_type_default(self):
        assert FirstNeighbor().sampling_type() is SamplingType.INDIVIDUAL

    def test_unique_default(self):
        assert FirstNeighbor().unique(0) is False

    def test_expected_transits(self):
        class Wide(FirstNeighbor):
            def sample_size(self, step):
                return (25, 10)[step]
        app = Wide()
        assert app.expected_transits(0) == 1
        assert app.expected_transits(1) == 25
        assert app.expected_transits(2) == 250

    def test_repr(self):
        assert "first-neighbor" in repr(FirstNeighbor())

    def test_abstract_methods_raise(self):
        base = SamplingApp()
        with pytest.raises(NotImplementedError):
            base.steps()
        with pytest.raises(NotImplementedError):
            base.sample_size(0)
        with pytest.raises(NotImplementedError):
            base.next(None, None, None, 0, None)


class TestRandomRoots:
    def test_default_initial_roots_shape(self, tiny_graph, rng):
        roots = FirstNeighbor().initial_roots(tiny_graph, 10, rng)
        assert roots.shape == (10, 1)

    def test_roots_avoid_isolated(self, rng):
        from repro.graph.csr import CSRGraph
        g = CSRGraph.from_edges(100, [(0, 1)], undirected=True)
        roots = SamplingApp.random_roots(g, (500,), rng)
        assert set(np.unique(roots)) <= {0, 1}

    def test_roots_empty_graph_rejected(self, rng):
        from repro.graph.csr import CSRGraph
        g = CSRGraph.from_edges(5, [])
        with pytest.raises(ValueError):
            SamplingApp.random_roots(g, (3,), rng)


class TestReferencePath:
    def test_default_sample_neighbors_calls_next(self, tiny_graph, rng):
        app = FirstNeighbor()
        transits = np.array([0, 1, NULL_VERTEX])
        out, info = app.sample_neighbors(tiny_graph, transits, 0, rng)
        assert out.shape == (3, 1)
        assert out[0, 0] == tiny_graph.neighbors(0)[0]
        assert out[2, 0] == NULL_VERTEX

    def test_step_transits_default_is_prev_step(self, tiny_graph):
        app = FirstNeighbor()
        batch = SampleBatch(tiny_graph, np.array([[4]]))
        assert app.step_transits(0, batch[0], 0) == 4
        batch.append_step(np.array([[5]]))
        assert app.step_transits(1, batch[0], 0) == 5

    def test_transits_for_step_default(self, tiny_graph):
        app = FirstNeighbor()
        batch = SampleBatch(tiny_graph, np.array([[4], [5]]))
        assert np.array_equal(app.transits_for_step(batch, 0), batch.roots)
        batch.append_step(np.array([[1], [2]]))
        assert np.array_equal(app.transits_for_step(batch, 1),
                              batch.step_vertices[0])


class TestVertexUtility:
    def test_degree_and_neighbors(self, tiny_graph):
        v = Vertex(tiny_graph, 0)
        assert v.degree() == tiny_graph.degree(0)
        assert np.array_equal(v.neighbors(), tiny_graph.neighbors(0))

    def test_has_edge(self, tiny_graph):
        assert Vertex(tiny_graph, 0).has_edge(1)
        assert not Vertex(tiny_graph, 0).has_edge(6)

    def test_max_edge_weight(self, tiny_weighted):
        v = Vertex(tiny_weighted, 0)
        assert v.max_edge_weight() == pytest.approx(
            tiny_weighted.edge_weights(0).max())

    def test_prefix_sum(self, tiny_weighted):
        v = Vertex(tiny_weighted, 0)
        prefix = v.edge_weight_prefix_sum()
        assert np.allclose(prefix,
                           np.cumsum(tiny_weighted.edge_weights(0)))

    def test_equality_and_hash(self, tiny_graph):
        assert Vertex(tiny_graph, 3) == Vertex(tiny_graph, 3)
        assert Vertex(tiny_graph, 3) == 3
        assert hash(Vertex(tiny_graph, 3)) == hash(3)
        assert Vertex(tiny_graph, 3).__eq__("x") is NotImplemented

    def test_out_of_range(self, tiny_graph):
        with pytest.raises(ValueError):
            Vertex(tiny_graph, 99)

    def test_int_conversion(self, tiny_graph):
        assert int(Vertex(tiny_graph, 2)) == 2

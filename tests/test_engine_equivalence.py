"""Cross-engine distribution equivalence.

The paper's comparison only means something because every system
produces the *same samples* (statistically) — the engines differ in
execution strategy, not output.  These tests pin that property: for
each application, the marginal distributions produced by NextDoor, SP,
TP, KnightKing and the reference engine must agree.
"""

import numpy as np
import pytest

from repro.api.apps import DeepWalk, KHop, Layer, PPR
from repro.api.types import NULL_VERTEX
from repro.baselines import (
    FrontierEngine,
    KnightKingEngine,
    MessagePassingEngine,
    ReferenceSamplerEngine,
    SampleParallelEngine,
    VanillaTPEngine,
)
from repro.core.engine import NextDoorEngine

ALL_ENGINES = [NextDoorEngine, SampleParallelEngine, VanillaTPEngine,
               FrontierEngine, MessagePassingEngine,
               ReferenceSamplerEngine]


def first_step_distribution(engine_cls, app, graph, roots, seed):
    r = engine_cls().run(app, graph, roots=roots, seed=seed)
    samples = r.get_final_samples()
    if isinstance(samples, list):
        first = samples[0].ravel()
    else:
        first = samples[:, 0]
    first = first[first != NULL_VERTEX]
    return np.bincount(first, minlength=graph.num_vertices) / first.size


class TestFirstStepMarginals:
    @pytest.mark.parametrize("engine_cls", ALL_ENGINES)
    def test_deepwalk_marginal_matches_nextdoor(self, engine_cls,
                                                tiny_weighted):
        roots = np.zeros((4000, 1), dtype=np.int64)
        base = first_step_distribution(NextDoorEngine, DeepWalk(1),
                                       tiny_weighted, roots, seed=1)
        other = first_step_distribution(engine_cls, DeepWalk(1),
                                        tiny_weighted, roots, seed=2)
        # Total variation distance between the two empirical marginals.
        tv = 0.5 * np.abs(base - other).sum()
        assert tv < 0.05, engine_cls.__name__

    def test_knightking_marginal_matches(self, tiny_weighted):
        roots = np.zeros((4000, 1), dtype=np.int64)
        base = first_step_distribution(NextDoorEngine, DeepWalk(1),
                                       tiny_weighted, roots, seed=1)
        kk = first_step_distribution(KnightKingEngine, DeepWalk(1),
                                     tiny_weighted, roots, seed=2)
        assert 0.5 * np.abs(base - kk).sum() < 0.05


class TestVisitFrequencies:
    @pytest.mark.parametrize("engine_cls",
                             [SampleParallelEngine, VanillaTPEngine])
    def test_walk_occupancy_agrees(self, engine_cls, medium_graph):
        """After a longer walk, per-vertex visit frequencies agree in
        aggregate: compare the mean degree of visited vertices."""
        degs = medium_graph.degrees()

        def mean_visit_degree(engine):
            r = engine.run(DeepWalk(20), medium_graph,
                           num_samples=800, seed=5)
            visited = r.get_final_samples().ravel()
            visited = visited[visited != NULL_VERTEX]
            return degs[visited].mean()

        nd = mean_visit_degree(NextDoorEngine())
        other = mean_visit_degree(engine_cls())
        assert other == pytest.approx(nd, rel=0.1)

    def test_ppr_lengths_agree(self, medium_graph):
        def mean_length(engine):
            r = engine.run(PPR(termination_prob=0.15, max_steps=120),
                           medium_graph, num_samples=1200, seed=3)
            walks = r.get_final_samples()
            return (walks != NULL_VERTEX).sum(axis=1).mean()

        nd = mean_length(NextDoorEngine())
        kk = mean_length(KnightKingEngine())
        assert kk == pytest.approx(nd, rel=0.15)

    def test_khop_coverage_agrees(self, medium_graph):
        def hop2_mean_degree(engine):
            r = engine.run(KHop((10, 5)), medium_graph,
                           num_samples=300, seed=4)
            hop2 = r.get_final_samples()[1].ravel()
            hop2 = hop2[hop2 != NULL_VERTEX]
            return medium_graph.degrees()[hop2].mean()

        nd = hop2_mean_degree(NextDoorEngine())
        ref = hop2_mean_degree(ReferenceSamplerEngine())
        assert ref == pytest.approx(nd, rel=0.1)

    def test_layer_sample_sizes_agree(self, medium_graph):
        def sizes(engine):
            r = engine.run(Layer(step_size=20, max_size=60),
                           medium_graph, num_samples=64, seed=2)
            return (r.get_final_samples() != NULL_VERTEX).sum(axis=1).mean()

        nd = sizes(NextDoorEngine())
        sp = sizes(SampleParallelEngine())
        assert sp == pytest.approx(nd, rel=0.15)

"""Units for the dist runtime: network model, router, machine pool,
and the sharded engine's validation + accounting."""

import numpy as np
import pytest

from repro.api.apps import DeepWalk
from repro.api.types import NULL_VERTEX
from repro.core.engine import NextDoorEngine
from repro.dist import DistEngine, NetworkSpec, ShardRouter, \
    plan_partition
from repro.dist.netmodel import DEFAULT_NETWORK
from repro.gpu.multi_gpu import MachinePool
from repro.obs import get_metrics
from repro.obs.metrics import scalar_of
from repro.runtime.faults import FaultPlan


class TestNetworkSpec:
    def test_batch_seconds_alpha_beta(self):
        net = NetworkSpec(latency_s=1.0, bandwidth_bytes_per_s=24.0,
                          bytes_per_message=24)
        assert net.batch_seconds(1) == pytest.approx(2.0)
        assert net.batch_seconds(0) == 0.0
        assert net.batch_seconds(-1) == 0.0

    def test_message_bytes(self):
        assert DEFAULT_NETWORK.message_bytes(3) == 72

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_NETWORK.latency_s = 0.0


class TestShardRouter:
    def _router(self, assignment, num_shards, fault_plan=None):
        return ShardRouter(np.asarray(assignment, np.int64),
                           num_shards, fault_plan=fault_plan)

    def test_rejects_out_of_range_assignment(self):
        with pytest.raises(ValueError):
            self._router([0, 1, 2], 2)
        with pytest.raises(ValueError):
            self._router([0, -1], 2)
        with pytest.raises(ValueError):
            ShardRouter(np.zeros(3, np.int64), 0)

    def test_step_zero_routes_nothing(self):
        # Seeds are scattered to their owners during ingest: a step
        # with no previous transits sends no messages.
        router = self._router([0, 1, 0, 1], 2)
        transits = np.array([[0], [1], [3]], np.int64)
        routed = router.route(transits, None, 0)
        assert routed.num_messages == 0
        assert routed.num_bytes == 0
        assert not routed.batches
        assert routed.comm_seconds.tolist() == [0.0, 0.0]

    def test_routes_walkers_that_changed_owner(self):
        router = self._router([0, 0, 1, 1], 2)
        prev = np.array([[0], [1], [2]], np.int64)   # owners 0 0 1
        cur = np.array([[2], [1], [3]], np.int64)    # owners 1 0 1
        routed = router.route(cur, prev, 1)
        # Only pair 0 moved (shard 0 -> 1); pair 1 stayed on 0, pair 2
        # stayed on 1.
        assert routed.num_messages == 1
        assert list(routed.batches) == [(0, 1)]
        assert routed.batches[(0, 1)].tolist() == [0]
        assert routed.comm_seconds[0] > 0      # sender serialization
        assert routed.comm_seconds[1] > 0      # receiver drain

    def test_drain_order_is_canonical(self):
        router = self._router([0, 1, 2, 0], 3)
        prev = np.array([[0, 0], [1, 1]], np.int64)
        cur = np.array([[1, 2], [3, 2]], np.int64)
        routed = router.route(cur, prev, 1)
        merged = routed.drain_order()
        assert merged.tolist() == sorted(merged.tolist())
        assert np.array_equal(merged, routed.seqs)

    def test_drain_order_detects_loss(self):
        router = self._router([0, 1], 2)
        prev = np.array([[0], [1]], np.int64)
        cur = np.array([[1], [0]], np.int64)
        routed = router.route(cur, prev, 1)
        routed.batches.pop(next(iter(routed.batches)))
        with pytest.raises(AssertionError):
            routed.drain_order()

    def test_khop_parent_column_mapping(self):
        # A width-4 step descending from a width-2 step: columns 0-1
        # descend from parent column 0, columns 2-3 from column 1.
        router = self._router([0, 1], 2)
        prev = np.array([[0, 1]], np.int64)
        cur = np.array([[0, 0, 0, 0]], np.int64)   # all now on shard 0
        routed = router.route(cur, prev, 1)
        # Pairs 2 and 3 (parent col 1, owner 1) moved to shard 0.
        assert routed.num_messages == 2
        assert routed.batches[(1, 0)].tolist() == [2, 3]

    def test_null_transits_are_skipped(self):
        router = self._router([0, 1], 2)
        prev = np.array([[0], [1]], np.int64)
        cur = np.array([[NULL_VERTEX], [0]], np.int64)
        routed = router.route(cur, prev, 1)
        assert routed.num_messages == 1   # only the live pair routed

    def test_kill_shard_requeues_inbox(self):
        plan = FaultPlan.parse("kill-shard:1")
        router = self._router([0, 1], 2, fault_plan=plan)
        prev = np.array([[0], [1]], np.int64)
        cur = np.array([[1], [0]], np.int64)
        routed = router.route(cur, prev, 1)
        assert routed.respawned_shard == 0   # lowest inbound shard
        assert routed.requeued >= 1
        assert routed.respawn_seconds > DEFAULT_NETWORK.respawn_s / 2
        # Redelivery doubles the victim's inbound bytes on the wire.
        clean = self._router([0, 1], 2).route(cur, prev, 1)
        assert routed.num_bytes > clean.num_bytes
        # The drain still reconstructs the canonical order.
        assert np.array_equal(routed.drain_order(), routed.seqs)


class TestMachinePool:
    def test_superstep_accounting(self):
        from repro.gpu.warp import WarpStats

        pool = MachinePool(2, barrier_seconds=0.5)
        pool.begin_superstep()
        device = pool.devices[0]
        kernel = device.new_kernel("k")
        kernel.add_group(1, 2, WarpStats(device.spec).compute(1000.0))
        device.launch(kernel, phase="sampling")
        elapsed = pool.end_superstep([0.0, 2.0])
        busy0 = pool.devices[0].elapsed_seconds
        assert pool.shard_seconds == [[busy0, 2.0]]
        assert elapsed == pytest.approx(2.5)
        assert pool.superstep_seconds == [elapsed]
        assert pool.elapsed_seconds == pytest.approx(elapsed)

    def test_elapsed_sums_supersteps(self):
        pool = MachinePool(2, barrier_seconds=1.0)
        for comm in ([1.0, 0.0], [0.0, 3.0]):
            pool.begin_superstep()
            pool.end_superstep(comm)
        assert pool.elapsed_seconds == pytest.approx(2.0 + 1.0 + 3.0)
        pool.record_run()
        assert pool.elapsed_seconds > 6.0

    def test_num_shards(self):
        assert MachinePool(3).num_shards == 3


class TestDistEngineValidation:
    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            DistEngine(0)

    def test_rejects_non_nextdoor_base(self):
        from repro.baselines import KnightKingEngine
        with pytest.raises(TypeError):
            DistEngine(2, base=KnightKingEngine())

    def test_rejects_checkpointing_base(self, tmp_path):
        with pytest.raises(ValueError):
            DistEngine(2, base=NextDoorEngine(
                checkpoint_dir=str(tmp_path)))

    def test_rejects_plan_shard_mismatch(self, medium_graph):
        plan = plan_partition(medium_graph, 3)
        engine = DistEngine(2, plan=plan)
        with pytest.raises(ValueError):
            engine.run(DeepWalk(walk_length=4), medium_graph,
                       num_samples=8, seed=0)

    def test_rejects_plan_for_other_graph(self, medium_graph,
                                          tiny_graph):
        plan = plan_partition(tiny_graph, 2)
        engine = DistEngine(2, plan=plan)
        with pytest.raises(ValueError):
            engine.run(DeepWalk(walk_length=4), medium_graph,
                       num_samples=8, seed=0)


class TestDistEngineAccounting:
    @pytest.fixture(scope="class")
    def result(self, medium_graph):
        return DistEngine(3).run(DeepWalk(walk_length=6), medium_graph,
                                 num_samples=32, seed=4)

    def test_superstep_records_match_steps(self, result):
        assert len(result.superstep_seconds) == result.steps_run
        assert len(result.shard_seconds) == result.steps_run
        assert all(len(row) == 3 for row in result.shard_seconds)

    def test_messages_flow_between_shards(self, result):
        assert result.messages_routed > 0
        assert result.bytes_routed == \
            DEFAULT_NETWORK.message_bytes(result.messages_routed)
        assert result.messages_requeued == 0
        assert result.shard_respawns == 0

    def test_breakdown_has_deployment_phases(self, result):
        assert result.breakdown["barrier"] == pytest.approx(
            DEFAULT_NETWORK.barrier_s * result.steps_run)
        assert "coordination" in result.breakdown

    def test_seconds_cover_critical_path(self, result):
        assert result.seconds >= sum(result.superstep_seconds)
        assert result.oracle_seconds > 0
        assert result.seconds > result.oracle_seconds

    def test_metrics_recorded(self, medium_graph):
        before = get_metrics().snapshot()
        DistEngine(2).run(DeepWalk(walk_length=6), medium_graph,
                          num_samples=32, seed=4)
        after = get_metrics().snapshot()

        def delta(name):
            return (scalar_of(after.get(name, 0.0))
                    - scalar_of(before.get(name, 0.0)))

        assert delta("dist.supersteps") > 0
        assert delta("dist.messages_routed") > 0
        assert delta("dist.superstep_seconds") > 0
        assert delta("engine.runs") == 1

    def test_per_shard_stage_series_labeled(self, medium_graph):
        DistEngine(2).run(DeepWalk(walk_length=6), medium_graph,
                          num_samples=32, seed=4)
        snap = get_metrics().snapshot()
        series = snap["engine.stage_seconds"]["series"]
        shard_series = [key for key in series
                        if 'stage="shard"' in key and 'shard="' in key]
        assert shard_series

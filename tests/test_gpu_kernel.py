"""Kernel cost evaluation: occupancy, work/span/bandwidth bounds."""

import pytest

from repro.gpu.kernel import BlockGroup, KernelSpec
from repro.gpu.spec import GPUSpec, V100
from repro.gpu.warp import WarpStats


def make_warp(compute=100.0):
    return WarpStats(V100).compute(compute)


class TestBlockGroup:
    def test_block_cycles_single_warp(self):
        g = BlockGroup(1, 1, make_warp(100.0))
        assert g.block_cycles == 100.0

    def test_block_cycles_scheduler_bound(self):
        # 8 warps share 4 schedulers: throughput bound = 8*100/4.
        g = BlockGroup(1, 8, make_warp(100.0))
        assert g.block_cycles == pytest.approx(200.0)

    def test_serial_rounds_multiply(self):
        g = BlockGroup(1, 1, make_warp(100.0), serial_rounds=3.0)
        assert g.block_cycles == 300.0

    def test_occupancy_warp_limited(self):
        g = BlockGroup(1, 32, make_warp())
        assert g.occupancy(V100) == V100.max_warps_per_sm // 32

    def test_occupancy_smem_limited(self):
        g = BlockGroup(1, 1, make_warp(),
                       shared_mem_bytes=V100.shared_mem_per_sm // 2)
        assert g.occupancy(V100) == 2

    def test_occupancy_block_limited(self):
        g = BlockGroup(1, 1, make_warp())
        assert g.occupancy(V100) == V100.max_blocks_per_sm

    def test_total_warps(self):
        g = BlockGroup(4, 8, make_warp(), serial_rounds=2.0)
        assert g.total_warps == 64


class TestKernelSpec:
    def test_empty_kernel(self):
        k = KernelSpec("k", V100)
        assert k.is_empty
        result = k.evaluate()
        assert result.wall_cycles == 0.0
        assert result.is_trivial

    def test_zero_blocks_ignored(self):
        k = KernelSpec("k", V100)
        k.add_group(0, 4, make_warp())
        assert k.is_empty

    def test_block_size_limit(self):
        k = KernelSpec("k", V100)
        with pytest.raises(ValueError):
            k.add_group(1, 33, make_warp())

    def test_smem_limit(self):
        k = KernelSpec("k", V100)
        with pytest.raises(ValueError):
            k.add_group(1, 1, make_warp(),
                        shared_mem_bytes=V100.shared_mem_per_block + 1)

    def test_span_bound_small_launch(self):
        # One block: the wall is that block's duration.
        k = KernelSpec("k", V100)
        k.add_group(1, 1, make_warp(500.0))
        assert k.evaluate().wall_cycles == pytest.approx(500.0)

    def test_throughput_bound_large_launch(self):
        # Far more blocks than slots: work/slots dominates the span.
        k = KernelSpec("k", V100)
        blocks = V100.num_sms * V100.max_blocks_per_sm * 10
        k.add_group(blocks, 1, make_warp(100.0))
        result = k.evaluate()
        slots = V100.num_sms * V100.max_blocks_per_sm
        assert result.wall_cycles == pytest.approx(blocks * 100.0 / slots)

    def test_imbalance_dominates(self):
        # A single huge block sets the span no matter how small the
        # rest is — the vanilla-TP failure mode.
        k = KernelSpec("k", V100)
        k.add_group(100, 1, make_warp(10.0))
        k.add_group(1, 1, make_warp(100000.0))
        assert k.evaluate().wall_cycles >= 100000.0

    def test_bandwidth_floor(self):
        # Tiny compute but gigantic traffic: the DRAM floor binds.
        warp = WarpStats(V100).compute(1.0)
        warp.counters.global_load_transactions = 1e9
        k = KernelSpec("k", V100)
        k.add_group(1, 1, warp)
        expected = (1e9 * V100.transaction_bytes
                    / V100.dram_bytes_per_cycle)
        assert k.evaluate().wall_cycles >= expected

    def test_busy_bounded_by_wall(self):
        k = KernelSpec("k", V100)
        k.add_group(5000, 4, make_warp(50.0))
        result = k.evaluate()
        assert result.sm_busy_cycles <= result.wall_cycles * V100.num_sms

    def test_counters_scale_with_groups(self):
        warp = WarpStats(V100).global_load(32)
        k = KernelSpec("k", V100)
        k.add_group(10, 2, warp)
        result = k.evaluate()
        assert result.counters.global_load_transactions == \
            pytest.approx(8 * 10 * 2)

    def test_custom_spec(self):
        small = GPUSpec(num_sms=1, max_blocks_per_sm=1, max_warps_per_sm=4)
        k = KernelSpec("k", small)
        k.add_group(4, 1, WarpStats(small).compute(100.0))
        # One slot: the four blocks serialize.
        assert k.evaluate().wall_cycles == pytest.approx(400.0)

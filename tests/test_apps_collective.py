"""Collective-transit applications: layer, importance, cluster."""

import numpy as np
import pytest

from repro.api.apps import ClusterGCN, FastGCN, LADIES, Layer
from repro.api.apps._kernels import build_combined_neighborhood
from repro.api.types import NULL_VERTEX, SamplingType
from repro.core.engine import NextDoorEngine
from repro.graph.partition import random_partition


class TestCombinedNeighborhood:
    def test_concatenates_per_sample(self, tiny_graph):
        transits = np.array([[0, 1], [2, NULL_VERTEX]])
        values, offsets = build_combined_neighborhood(tiny_graph, transits)
        s0 = values[offsets[0]:offsets[1]]
        expected = np.concatenate([tiny_graph.neighbors(0),
                                   tiny_graph.neighbors(1)])
        assert sorted(s0.tolist()) == sorted(expected.tolist())
        s1 = values[offsets[1]:offsets[2]]
        assert sorted(s1.tolist()) == sorted(
            tiny_graph.neighbors(2).tolist())

    def test_all_null_sample(self, tiny_graph):
        transits = np.array([[NULL_VERTEX, NULL_VERTEX]])
        values, offsets = build_combined_neighborhood(tiny_graph, transits)
        assert values.size == 0
        assert offsets.tolist() == [0, 0]


class TestLayer:
    def test_parameters_validate(self):
        with pytest.raises(ValueError):
            Layer(step_size=0)
        with pytest.raises(ValueError):
            Layer(max_size=0)

    def test_collective_type(self):
        assert Layer().sampling_type() is SamplingType.COLLECTIVE

    def test_respects_max_size(self, medium_graph):
        result = NextDoorEngine().run(Layer(step_size=20, max_size=50),
                                      medium_graph, num_samples=16, seed=0)
        samples = result.get_final_samples()
        for row in samples:
            live = (row != NULL_VERTEX).sum()
            # Growth stops within one step of crossing max_size.
            assert live <= 50 + 20

    def test_terminates(self, medium_graph):
        result = NextDoorEngine().run(Layer(step_size=20, max_size=50),
                                      medium_graph, num_samples=16, seed=0)
        assert result.steps_run <= Layer(20, 50).max_steps_cap()

    def test_sampled_from_combined_neighborhood(self, medium_graph):
        result = NextDoorEngine().run(Layer(step_size=10, max_size=100),
                                      medium_graph, num_samples=8, seed=0)
        batch = result.batch
        # Step 1's vertices come from the roots' neighborhoods.
        for s in range(8):
            root = int(batch.roots[s, 0])
            nbrs = set(medium_graph.neighbors(root).tolist())
            for v in batch.step_vertices[0][s]:
                if v != NULL_VERTEX:
                    assert int(v) in nbrs

    def test_materialised_and_lazy_paths_agree(self, medium_graph, rng):
        """The degree-weighted shortcut must match sampling from the
        materialised concatenation, distributionally."""
        app = Layer(step_size=4000, max_size=10 ** 9)
        transits = rng.integers(0, medium_graph.num_vertices,
                                size=(1, 20))
        values, offsets = build_combined_neighborhood(medium_graph,
                                                      transits)
        from repro.api.sample import SampleBatch
        batch = SampleBatch(medium_graph, np.zeros((1, 1), np.int64))
        lazy, _ = app.sample_from_neighborhood(
            medium_graph, batch, None, offsets, transits, 0,
            np.random.default_rng(0))
        eager, _ = app.sample_from_neighborhood(
            medium_graph, batch, values, offsets, transits, 0,
            np.random.default_rng(1))
        # Compare the two draws' empirical distributions over a few
        # frequent vertices.
        freq_e = np.bincount(eager[eager != NULL_VERTEX],
                             minlength=medium_graph.num_vertices)
        freq_l = np.bincount(lazy[lazy != NULL_VERTEX],
                             minlength=medium_graph.num_vertices)
        top = np.argsort(freq_e)[-5:]
        for v in top:
            assert abs(freq_e[v] - freq_l[v]) < 0.35 * max(freq_e[v], 1) + 10


class TestFastGCN:
    def test_parameters_validate(self):
        with pytest.raises(ValueError):
            FastGCN(step_size=0)

    def test_shapes(self, medium_graph):
        result = NextDoorEngine().run(FastGCN(step_size=16, num_steps=2,
                                              batch_size=8),
                                      medium_graph, num_samples=4, seed=0)
        samples = result.get_final_samples()
        assert samples.shape == (4, 32)

    def test_degree_biased(self, medium_graph):
        result = NextDoorEngine().run(FastGCN(step_size=64, num_steps=2,
                                              batch_size=8),
                                      medium_graph, num_samples=32, seed=0)
        sampled = result.get_final_samples().ravel()
        sampled = sampled[sampled != NULL_VERTEX]
        avg_sampled_deg = medium_graph.degrees()[sampled].mean()
        assert avg_sampled_deg > medium_graph.avg_degree

    def test_recorded_edges_exist(self, medium_graph):
        result = NextDoorEngine().run(FastGCN(step_size=16, batch_size=8),
                                      medium_graph, num_samples=8, seed=0)
        for s in range(8):
            edges = result.batch.sample_edges(s)
            if edges.size:
                assert medium_graph.has_edges(edges[:, 0],
                                              edges[:, 1]).all()

    def test_recorded_edges_touch_transits(self, medium_graph):
        result = NextDoorEngine().run(FastGCN(step_size=16, batch_size=8),
                                      medium_graph, num_samples=4, seed=0)
        batch = result.batch
        for s in range(4):
            edges = batch.sample_edges(s)
            transit_pool = set(batch.roots[s].tolist())
            for arr in batch.step_vertices:
                transit_pool.update(arr[s].tolist())
            for u, _v in edges:
                assert int(u) in transit_pool


class TestLADIES:
    def test_candidates_restricted_to_neighborhood(self, medium_graph):
        result = NextDoorEngine().run(LADIES(step_size=16, batch_size=4),
                                      medium_graph, num_samples=4, seed=0)
        batch = result.batch
        # Step 1's vertices must be neighbors of some root.
        for s in range(4):
            pool = set()
            for r in batch.roots[s]:
                pool.update(medium_graph.neighbors(int(r)).tolist())
            for v in batch.step_vertices[0][s]:
                if v != NULL_VERTEX:
                    assert int(v) in pool

    def test_degree_weighted_within_candidates(self, star_graph):
        # From the star's center, all leaves have degree 1: LADIES
        # degenerates to uniform — no crash, full coverage.
        result = NextDoorEngine().run(
            LADIES(step_size=64, batch_size=1, num_steps=1), star_graph,
            roots=np.zeros((16, 1), dtype=np.int64), seed=0)
        sampled = result.get_final_samples()
        assert (sampled != NULL_VERTEX).all()


class TestClusterGCN:
    def test_parameters_validate(self):
        with pytest.raises(ValueError):
            ClusterGCN(clusters_per_sample=0)

    def test_roots_are_cluster_members(self, medium_graph):
        partition = random_partition(medium_graph, 16, seed=3)
        app = ClusterGCN(partition=partition, clusters_per_sample=4)
        result = NextDoorEngine().run(app, medium_graph, num_samples=4,
                                      seed=0)
        for s in range(4):
            verts = result.batch.roots[s]
            verts = verts[verts != NULL_VERTEX]
            clusters = set(partition.assignment[verts].tolist())
            assert len(clusters) <= 4

    def test_recorded_edges_are_induced_adjacency(self, medium_graph):
        partition = random_partition(medium_graph, 8, seed=3)
        app = ClusterGCN(partition=partition, clusters_per_sample=2)
        result = NextDoorEngine().run(app, medium_graph, num_samples=2,
                                      seed=0)
        batch = result.batch
        for s in range(2):
            verts = batch.roots[s]
            verts = set(int(v) for v in verts[verts != NULL_VERTEX])
            edges = batch.sample_edges(s)
            # Recorded exactly: graph edges with both endpoints inside.
            expected = set()
            for u in verts:
                for v in medium_graph.neighbors(u):
                    if int(v) in verts:
                        expected.add((u, int(v)))
            got = set(map(tuple, edges.tolist()))
            assert got == expected

    def test_no_new_vertices(self, medium_graph):
        app = ClusterGCN(num_clusters=8, clusters_per_sample=2)
        result = NextDoorEngine().run(app, medium_graph, num_samples=2,
                                      seed=0)
        assert result.get_final_samples().shape[1] == 0

"""Device timeline, phases, transfers, and per-phase metrics."""

import pytest

from repro.gpu.device import Device, Timeline, TimelineEntry
from repro.gpu.spec import GPUSpec, V100
from repro.gpu.warp import WarpStats


def launch_simple(device, phase="sampling", compute=100.0):
    kernel = device.new_kernel("k")
    kernel.add_group(1, 1, WarpStats(device.spec).compute(compute))
    return device.launch(kernel, phase=phase)


class TestDevice:
    def test_launch_records_timeline(self):
        d = Device()
        launch_simple(d)
        assert len(d.timeline.entries) == 1
        assert d.elapsed_seconds > 0

    def test_seconds_conversion(self):
        d = Device()
        launch_simple(d, compute=V100.clock_ghz * 1e9)  # exactly 1 second
        assert d.elapsed_seconds == pytest.approx(1.0)

    def test_phase_breakdown(self):
        d = Device()
        launch_simple(d, phase="sampling")
        launch_simple(d, phase="scheduling_index")
        launch_simple(d, phase="sampling")
        breakdown = d.timeline.phase_breakdown()
        assert set(breakdown) == {"sampling", "scheduling_index"}
        assert breakdown["sampling"] == pytest.approx(
            2 * breakdown["scheduling_index"])

    def test_per_phase_metrics(self):
        d = Device()
        launch_simple(d, phase="sampling")
        launch_simple(d, phase="scheduling_index")
        assert set(d.metrics_by_phase) == {"sampling", "scheduling_index"}

    def test_transfer(self):
        d = Device()
        seconds = d.transfer(12_000_000_000)  # 12 GB at 12 GB/s
        assert seconds == pytest.approx(1.0)
        assert d.timeline.entries[0].kind == "transfer"
        assert d.timeline.total_seconds(kind="transfer") == pytest.approx(1.0)

    def test_reset(self):
        d = Device()
        launch_simple(d)
        d.reset()
        assert d.elapsed_seconds == 0.0
        assert not d.metrics_by_phase

    def test_custom_spec(self):
        slow = GPUSpec(clock_ghz=0.5)
        d = Device(slow)
        launch_simple(d, compute=100.0)
        fast = Device(GPUSpec(clock_ghz=2.0))
        launch_simple(fast, compute=100.0)
        assert d.elapsed_seconds > fast.elapsed_seconds


class TestTimeline:
    def test_total_seconds_filtering(self):
        t = Timeline([
            TimelineEntry("a", "sampling", 1.0),
            TimelineEntry("b", "transfer", 2.0, kind="transfer"),
        ])
        assert t.total_seconds() == 3.0
        assert t.total_seconds(phase="sampling") == 1.0
        assert t.total_seconds(kind="transfer") == 2.0

    def test_extend(self):
        a = Timeline([TimelineEntry("a", "p", 1.0)])
        b = Timeline([TimelineEntry("b", "p", 2.0)])
        a.extend(b)
        assert a.total_seconds() == 3.0

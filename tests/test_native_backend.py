"""Backend selection, RNG shims, and graceful degradation."""

import os
import warnings

import numpy as np
import pytest

from repro.native import rngshim
from repro.native.backend import (
    BACKEND_ENV,
    BACKEND_IDS,
    BACKEND_NAMES,
    CompiledBackend,
    NumbaBackend,
    NumpyBackend,
    available_backends,
    backend_scope,
    resolve_backend_name,
    set_backend,
)
from repro.obs import get_metrics

COMPILED = [b for b in available_backends() if b != "numpy"]


def _make_backend(name):
    from repro.native import backend as mod
    return mod._make(name)


class TestSelection:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numba")
        assert resolve_backend_name("numpy") == "numpy"

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numba")
        assert resolve_backend_name(None) == "numba"

    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend_name(None) == "numpy"

    def test_blank_env_ignored(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "  ")
        assert resolve_backend_name(None) == "numpy"

    def test_case_insensitive(self):
        assert resolve_backend_name("NUMBA") == "numba"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend_name("cuda")

    def test_every_name_resolvable(self):
        for name in BACKEND_NAMES:
            assert resolve_backend_name(name) == name

    def test_backend_scope_restores(self):
        from repro.native.backend import active_backend_name
        before = active_backend_name()
        with backend_scope("numba") as b:
            assert b.name == "numba"
            from repro.native.backend import active_backend
            assert active_backend() is b
        assert active_backend_name() == before

    def test_set_backend_exports_gauge(self):
        with backend_scope("numba"):
            gauge = get_metrics().gauge("runtime.backend_active")
            assert gauge.value == float(BACKEND_IDS["numba"])


class TestAutoFallback:
    def test_auto_without_numba_warns_once(self, monkeypatch):
        from repro.native import backend as mod, jit
        if jit.HAVE_NUMBA:
            pytest.skip("numba installed; auto resolves to numba")
        monkeypatch.setattr(mod, "_AUTO_WARNED", False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = mod._resolve_auto()
            second = mod._resolve_auto()
        assert isinstance(first, NumpyBackend)
        assert isinstance(second, NumpyBackend)
        relevant = [w for w in caught
                    if "numba is not installed" in str(w.message)]
        assert len(relevant) == 1

    def test_auto_with_numba_selects_numba(self):
        from repro.native import jit
        if not jit.HAVE_NUMBA:
            pytest.skip("numba not installed")
        from repro.native import backend as mod
        assert isinstance(mod._resolve_auto(), NumbaBackend)


class TestRngShim:
    """The C/numba node2vec kernels re-derive numpy's PCG64 stream;
    these pin the reference implementation the kernels mirror."""

    def test_ref_doubles_match_numpy(self):
        rng = np.random.default_rng(1234)
        state, inc = rngshim.raw_state(rng)
        _, ours = rngshim.ref_doubles(state, inc, 64)
        assert np.array_equal(ours, rng.random(64))

    def test_consume_realigns_stream(self):
        a = np.random.default_rng(77)
        b = np.random.default_rng(77)
        state, inc = rngshim.raw_state(a)
        rngshim.ref_doubles(state, inc, 10)
        rngshim.consume(a, 10)
        b.random(10)
        assert np.array_equal(a.random(8), b.random(8))

    def test_state_words_roundtrip(self):
        rng = np.random.default_rng(5)
        state, inc = rngshim.raw_state(rng)
        words = rngshim.state_words(rng)
        assert int(words[0]) << 64 | int(words[1]) == state
        assert int(words[2]) << 64 | int(words[3]) == inc

    def test_non_pcg64_declines(self):
        rng = np.random.Generator(np.random.MT19937(0))
        assert rngshim.raw_state(rng) is None
        assert rngshim.state_words(rng) is None

    def test_buffered_uint32_declines(self):
        rng = np.random.default_rng(0)
        rng.integers(0, 10, dtype=np.uint32)  # leaves has_uint32 set
        if rng.bit_generator.state.get("has_uint32"):
            assert rngshim.raw_state(rng) is None

    def test_pcg_fill_kernel_matches_numpy(self):
        from repro.native.kernels_py import pcg_fill
        rng = np.random.default_rng(99)
        words = rngshim.state_words(rng).copy()
        out = np.empty(32, dtype=np.float64)
        with np.errstate(over="ignore"):
            pcg_fill(words, out)
        assert np.array_equal(out, rng.random(32))


class TestGeneratorForCache:
    def test_cached_matches_direct_construction(self):
        from repro.runtime.rngplan import generator_for
        for seed, key in [(0, (0,)), (123, (4, 7)), (2**63, (1, 2, 3))]:
            cached = generator_for(seed, key)
            direct = np.random.Generator(np.random.PCG64(
                np.random.SeedSequence(entropy=seed, spawn_key=key)))
            assert (cached.bit_generator.state
                    == direct.bit_generator.state)
            assert np.array_equal(cached.random(16), direct.random(16))

    def test_repeat_calls_independent(self):
        from repro.runtime.rngplan import generator_for
        a = generator_for(42, (3,))
        a.random(100)
        b = generator_for(42, (3,))
        c = np.random.Generator(np.random.PCG64(
            np.random.SeedSequence(entropy=42, spawn_key=(3,))))
        assert np.array_equal(b.random(4), c.random(4))

    def test_seed_words_shim_generic_path(self):
        from repro.runtime.rngplan import _seed_words
        shim = _seed_words(7, (1, 2))
        ss = np.random.SeedSequence(entropy=7, spawn_key=(1, 2))
        assert np.array_equal(shim.generate_state(4, np.uint64),
                              ss.generate_state(4, np.uint64))
        # Fallback path: widths/dtypes beyond the cached words.
        assert np.array_equal(shim.generate_state(8, np.uint32),
                              ss.generate_state(8, np.uint32))
        assert np.array_equal(shim.generate_state(6, np.uint64),
                              ss.generate_state(6, np.uint64))


class _OneBadKernel(NumbaBackend):
    """numba backend whose grouping kernel always fails to build."""

    def _build(self, name):
        if name == "grouping":
            raise RuntimeError("synthetic compile failure")
        return super()._build(name)


class TestGracefulDegradation:
    def test_failed_kernel_falls_back_and_counts(self):
        counter = get_metrics().counter("native.compile_failures")
        before = counter.value
        backend = _OneBadKernel()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert backend.grouping(
                np.array([2, 0, 2, 1], dtype=np.int64)) is None
            # Second call: already disabled, no second warning/count.
            assert backend.grouping(
                np.array([1, 1], dtype=np.int64)) is None
        disabled = [w for w in caught if "disabled" in str(w.message)]
        assert len(disabled) == 1
        assert counter.value == before + 1

    def test_other_kernels_stay_alive(self):
        backend = _OneBadKernel()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            backend.warm_up()
        rows = np.array([[1, 1, 2], [3, 4, 3]], dtype=np.int64)
        got = backend.dedupe_rows(rows)
        assert got is not None
        deduped, dups = got
        assert dups == 2
        assert "grouping" in backend._failed
        assert "dedupe_rows" not in backend._failed

    def test_disable_direct_is_idempotent(self):
        counter = get_metrics().counter("native.compile_failures")
        backend = NumbaBackend()
        before = counter.value
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            backend._disable("uniform_fill", ValueError("x"))
            backend._disable("uniform_fill", ValueError("x"))
        assert counter.value == before + 1
        assert backend.uniform_neighbors(
            None, np.array([0], dtype=np.int64), 1, None) is None


@pytest.mark.parametrize("backend_name", COMPILED)
class TestKernelMicroParity:
    """Hook-level parity on tiny inputs, per compiled backend."""

    @pytest.fixture
    def backend(self, backend_name):
        b = _make_backend(backend_name)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            b.warm_up()
        assert not b._failed, b._failed
        return b

    def test_warm_up_idempotent(self, backend):
        table_after_first = dict(backend._table)
        backend.warm_up()
        assert backend._table == table_after_first

    def test_grouping_matches_argsort(self, backend):
        vals = np.array([5, 2, 5, 9, 2, 2, 7], dtype=np.int64)
        got = backend.grouping(vals)
        assert got is not None
        order, unique, counts, offsets = got
        assert np.array_equal(vals[order], np.sort(vals, kind="stable"))
        ref_unique, ref_counts = np.unique(vals, return_counts=True)
        assert np.array_equal(unique, ref_unique)
        assert np.array_equal(counts, ref_counts)
        assert np.array_equal(offsets,
                              np.concatenate([[0], np.cumsum(ref_counts)]))
        # Stability: equal keys keep input order (the three 2s).
        assert np.array_equal(order[:3], np.array([1, 4, 5]))

    def test_grouping_declines_on_huge_span(self, backend):
        vals = np.array([0, 1 << 40], dtype=np.int64)
        assert backend.grouping(vals) is None

    def test_scatter_rows_matches_fancy_indexing(self, backend):
        rng = np.random.default_rng(3)
        n, m, rows_out, width_cols = 17, 3, 9, 4
        sampled = rng.integers(0, 50, size=(n, m)).astype(np.int64)
        sample_ids = rng.integers(0, rows_out, size=n).astype(np.int64)
        cols = rng.integers(0, width_cols, size=n).astype(np.int64)
        out = np.full((rows_out, width_cols * m), -1, dtype=np.int64)
        ref = out.copy()
        slots = cols[:, None] * m + np.arange(m)[None, :]
        ref[sample_ids[:, None], slots] = sampled
        assert backend.scatter_rows(out, sampled, sample_ids, cols,
                                    m) is True
        assert np.array_equal(out, ref)

    def test_scatter_rows_declines_bad_dtype(self, backend):
        out = np.zeros((2, 2), dtype=np.float64)
        assert backend.scatter_rows(
            out, np.zeros((1, 1), dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            np.zeros(1, dtype=np.int64), 1) is None

    def test_ragged_gather_matches_concat(self, backend):
        values = np.arange(100, dtype=np.int64) * 3
        starts = np.array([4, 50, 10], dtype=np.int64)
        counts = np.array([3, 0, 5], dtype=np.int64)
        offsets = np.concatenate(
            [[0], np.cumsum(counts)[:-1]]).astype(np.int64)
        got = backend.ragged_gather(values, starts, counts, offsets, 8)
        ref = np.concatenate([values[s:s + c]
                              for s, c in zip(starts, counts)])
        assert np.array_equal(got, ref)

    def test_ragged_gather_float64(self, backend):
        values = np.linspace(0.0, 1.0, 20)
        starts = np.array([2, 9], dtype=np.int64)
        counts = np.array([4, 4], dtype=np.int64)
        offsets = np.array([0, 4], dtype=np.int64)
        got = backend.ragged_gather(values, starts, counts, offsets, 8)
        assert np.array_equal(
            got, np.concatenate([values[2:6], values[9:13]]))

    def test_dedupe_rows_matches_numpy(self, backend):
        rows = np.array([[4, 4, 5, 4], [1, 2, 3, 1], [7, 7, 7, 7]],
                        dtype=np.int64)
        got = backend.dedupe_rows(rows)
        assert got is not None
        deduped, dups = got
        from repro.api.types import NULL_VERTEX
        assert dups == 2 + 1 + 3
        ref = rows.copy()
        for i in range(ref.shape[0]):
            seen = set()
            for j in range(ref.shape[1]):
                v = ref[i, j]
                if v in seen:
                    ref[i, j] = NULL_VERTEX
                seen.add(v)
        assert np.array_equal(deduped, ref)
        # Input untouched.
        assert rows[0, 1] == 4

    def test_uniform_neighbors_matches_numpy_draw_order(self, backend):
        from repro.graph.generators import rmat_graph
        g = rmat_graph(64, 256, seed=11)
        transits = np.array([0, 5, -1, 63, 12, 5], dtype=np.int64)
        ref_rng = np.random.default_rng(8)
        got_rng = np.random.default_rng(8)
        got = backend.uniform_neighbors(g, transits, 3, got_rng)
        assert got is not None
        from repro.native.backend import _uniform_from_draws, \
            _eligible_indices
        count = _eligible_indices(g, transits).size
        ref = _uniform_from_draws(g, transits, 3,
                                  ref_rng.random(count * 3))
        assert np.array_equal(got, ref)
        # Both generators advanced identically.
        assert np.array_equal(got_rng.random(4), ref_rng.random(4))

    def test_weighted_neighbors_matches_numpy_draw_order(self, backend):
        from repro.graph.generators import rmat_graph
        g = rmat_graph(64, 256, seed=11).with_random_weights(seed=2)
        transits = np.array([3, 3, 17, -1, 60], dtype=np.int64)
        ref_rng = np.random.default_rng(8)
        got_rng = np.random.default_rng(8)
        got = backend.weighted_neighbors(g, transits, 2, got_rng)
        assert got is not None
        from repro.native.backend import _weighted_from_draws, \
            _eligible_indices
        count = _eligible_indices(g, transits).size
        ref = _weighted_from_draws(g, transits, 2,
                                   ref_rng.random(2 * count))
        assert np.array_equal(got, ref)
        assert np.array_equal(got_rng.random(4), ref_rng.random(4))


class TestCNativeToolchain:
    def test_toolchain_detection_consistent(self):
        from repro.native import cnative
        from repro.native.backend import CNativeBackend
        assert CNativeBackend().available() \
            == cnative.toolchain_available()

    def test_library_loads_when_toolchain_present(self):
        from repro.native import cnative
        if not cnative.toolchain_available():
            pytest.skip("no C toolchain on this host")
        lib = cnative.load_library()
        assert lib is not None
        # Loading again reuses the cached artifact.
        assert cnative.load_library() is not None


class TestEnvSelectionEndToEnd:
    def test_env_var_drives_default_backend(self, monkeypatch):
        from repro.native import backend as mod
        monkeypatch.setenv(BACKEND_ENV, "numba")
        monkeypatch.setattr(mod, "_ACTIVE", None)
        try:
            assert mod.active_backend().name == "numba"
        finally:
            mod._ACTIVE = None

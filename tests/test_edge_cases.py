"""Failure injection & degenerate inputs across the stack."""

import numpy as np
import pytest

from repro.api.apps import DeepWalk, KHop, Layer, PPR
from repro.api.types import NULL_VERTEX
from repro.core.engine import NextDoorEngine
from repro.graph.csr import CSRGraph


@pytest.fixture
def sink_graph():
    """Directed: everything flows into vertex 3, which has no
    out-edges — every walk dies there."""
    return CSRGraph.from_edges(4, [(0, 3), (1, 3), (2, 3), (0, 1)])


@pytest.fixture
def two_vertex_graph():
    return CSRGraph.from_edges(2, [(0, 1)], undirected=True)


class TestDegenerateGraphs:
    def test_walks_die_at_sinks(self, sink_graph):
        r = NextDoorEngine().run(
            DeepWalk(10), sink_graph,
            roots=np.array([[0], [1], [2]]), seed=0)
        walks = r.get_final_samples()
        for row in walks:
            live = row[row != NULL_VERTEX]
            if live.size:
                assert live[-1] == 3 or sink_graph.degree(int(live[-1])) == 0

    def test_two_vertex_walk_oscillates(self, two_vertex_graph):
        r = NextDoorEngine().run(DeepWalk(6), two_vertex_graph,
                                 roots=np.array([[0]]), seed=0)
        walk = r.get_final_samples()[0]
        assert list(walk) == [1, 0, 1, 0, 1, 0]

    def test_khop_on_sink_roots(self, sink_graph):
        r = NextDoorEngine().run(KHop((3, 2)), sink_graph,
                                 roots=np.array([[3]]), seed=0)
        hop1 = r.get_final_samples()[0]
        assert (hop1 == NULL_VERTEX).all()

    def test_layer_on_sink_roots(self, sink_graph):
        r = NextDoorEngine().run(Layer(step_size=3, max_size=9),
                                 sink_graph,
                                 roots=np.array([[3]]), seed=0)
        assert (r.get_final_samples() == NULL_VERTEX).all()

    def test_single_sample(self, two_vertex_graph):
        r = NextDoorEngine().run(DeepWalk(3), two_vertex_graph,
                                 num_samples=1, seed=0)
        assert r.get_final_samples().shape == (1, 3)

    def test_graph_with_no_edges_rejects_auto_roots(self):
        g = CSRGraph.from_edges(5, [])
        with pytest.raises(ValueError):
            NextDoorEngine().run(DeepWalk(3), g, num_samples=4, seed=0)

    def test_explicit_roots_on_edgeless_graph(self):
        g = CSRGraph.from_edges(5, [])
        r = NextDoorEngine().run(DeepWalk(3), g,
                                 roots=np.array([[0], [1]]), seed=0)
        # Walks die instantly; output is all NULL and the engine stops.
        assert (r.get_final_samples() == NULL_VERTEX).all()
        assert r.steps_run <= 1

    def test_more_devices_than_samples(self, two_vertex_graph):
        r = NextDoorEngine().run(DeepWalk(3), two_vertex_graph,
                                 num_samples=2, seed=0, num_devices=4)
        assert r.batch.num_samples == 2


class TestDegenerateParameters:
    def test_ppr_certain_termination(self, two_vertex_graph):
        r = NextDoorEngine().run(PPR(termination_prob=1.0, max_steps=10),
                                 two_vertex_graph, num_samples=4, seed=0)
        assert r.steps_run <= 1
        assert (r.get_final_samples() == NULL_VERTEX).all()

    def test_walk_length_one(self, two_vertex_graph):
        r = NextDoorEngine().run(DeepWalk(1), two_vertex_graph,
                                 num_samples=4, seed=0)
        assert r.get_final_samples().shape == (4, 1)

    def test_khop_fanout_one(self, two_vertex_graph):
        r = NextDoorEngine().run(KHop((1, 1)), two_vertex_graph,
                                 num_samples=4, seed=0)
        hop1, hop2 = r.get_final_samples()
        assert hop1.shape == (4, 1) and hop2.shape == (4, 1)

    def test_layer_step_larger_than_graph(self, two_vertex_graph):
        r = NextDoorEngine().run(Layer(step_size=50, max_size=100),
                                 two_vertex_graph, num_samples=2, seed=0)
        out = r.get_final_samples()
        live = out[out != NULL_VERTEX]
        assert set(np.unique(live)) <= {0, 1}


class TestGoldenDeterminism:
    """Cross-process regression pins: numpy guarantees PCG64 stream
    stability, so these exact outputs must never change.  A failure
    here means an RNG-consumption reordering that would silently alter
    every seeded experiment."""

    def test_deepwalk_golden(self, two_vertex_graph):
        r = NextDoorEngine().run(DeepWalk(4), two_vertex_graph,
                                 roots=np.array([[0], [1]]), seed=123)
        assert r.get_final_samples().tolist() == [[1, 0, 1, 0],
                                                  [0, 1, 0, 1]]

    def test_khop_golden(self):
        g = CSRGraph.from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)],
                                undirected=True)
        r = NextDoorEngine().run(KHop((3,)), g,
                                 roots=np.array([[0]]), seed=7)
        golden = r.get_final_samples()[0][0].tolist()
        again = NextDoorEngine().run(KHop((3,)), g,
                                     roots=np.array([[0]]),
                                     seed=7).get_final_samples()[0][0]
        assert golden == again.tolist()
        assert all(v in (1, 2, 3, 4) for v in golden)

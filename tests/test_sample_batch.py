"""SampleBatch / Sample: the paper's sample accessors."""

import numpy as np
import pytest

from repro.api.sample import Sample, SampleBatch
from repro.api.types import NULL_VERTEX


@pytest.fixture
def batch(tiny_graph):
    b = SampleBatch(tiny_graph, np.array([[0], [1], [2]]))
    b.append_step(np.array([[1], [2], [3]]))
    b.append_step(np.array([[2], [3], [NULL_VERTEX]]))
    return b


class TestSampleBatch:
    def test_roots_1d_promoted(self, tiny_graph):
        b = SampleBatch(tiny_graph, np.array([0, 1, 2]))
        assert b.roots.shape == (3, 1)

    def test_roots_validation(self, tiny_graph):
        with pytest.raises(ValueError):
            SampleBatch(tiny_graph, np.zeros((2, 2, 2), dtype=np.int64))

    def test_num_samples_and_steps(self, batch):
        assert batch.num_samples == 3
        assert batch.num_steps == 2

    def test_append_step_validation(self, batch):
        with pytest.raises(ValueError):
            batch.append_step(np.array([[1], [2]]))  # wrong sample count
        with pytest.raises(ValueError):
            batch.append_step(np.array([1, 2, 3]))  # not 2-D

    def test_as_array(self, batch):
        arr = batch.as_array()
        assert arr.shape == (3, 2)
        assert list(arr[0]) == [1, 2]
        assert arr[2, 1] == NULL_VERTEX

    def test_as_array_with_roots(self, batch):
        arr = batch.as_array(include_roots=True)
        assert arr.shape == (3, 3)
        assert list(arr[1]) == [1, 2, 3]

    def test_as_array_empty(self, tiny_graph):
        b = SampleBatch(tiny_graph, np.array([[0]]))
        assert b.as_array().shape == (1, 0)

    def test_per_step_arrays(self, batch):
        steps = batch.per_step_arrays()
        assert len(steps) == 2
        assert steps[0].shape == (3, 1)

    def test_sample_vertices_drops_null(self, batch):
        assert list(batch.sample_vertices(2)) == [2, 3]
        assert list(batch.sample_vertices(2, drop_null=False)) \
            == [2, 3, NULL_VERTEX]

    def test_record_and_query_edges(self, batch):
        batch.record_edges(np.array([[0, 1, 2], [1, 2, 3], [0, 2, 3]]))
        edges = batch.sample_edges(0)
        assert edges.shape == (2, 2)
        assert [1, 2] in edges.tolist()

    def test_record_edges_validation(self, batch):
        with pytest.raises(ValueError):
            batch.record_edges(np.array([[0, 1]]))

    def test_sample_edges_empty(self, batch):
        assert batch.sample_edges(0).shape == (0, 2)

    def test_indexing_and_iteration(self, batch):
        assert isinstance(batch[0], Sample)
        assert len(batch) == 3
        assert len(list(batch)) == 3
        with pytest.raises(IndexError):
            batch[3]


class TestSample:
    def test_prev_vertex_last_step(self, batch):
        s = batch[0]
        assert s.prev_vertex(1, 0) == 2  # step 2's vertex
        assert s.prev_vertex(2, 0) == 1  # step 1's vertex

    def test_prev_vertex_roots_act_as_step_minus_one(self, tiny_graph):
        b = SampleBatch(tiny_graph, np.array([[5]]))
        assert b[0].prev_vertex(1, 0) == 5

    def test_prev_vertex_out_of_range(self, batch):
        s = batch[0]
        assert s.prev_vertex(10, 0) == NULL_VERTEX
        assert s.prev_vertex(1, 10) == NULL_VERTEX

    def test_prev_edges(self, batch, tiny_graph):
        s = batch[0]
        v = s.prev_vertex(1, 0)
        assert np.array_equal(s.prev_edges(1, 0), tiny_graph.neighbors(v))

    def test_prev_edges_null(self, batch):
        assert batch[2].prev_edges(1, 0).size == 0

    def test_roots_default(self, batch):
        assert list(batch[1].roots) == [1]
        assert batch[1].num_roots() == 1

    def test_roots_live_state(self, batch):
        batch.state["roots"] = np.array([[9], [8], [7]])
        assert list(batch[0].roots) == [9]

    def test_vertices(self, batch):
        assert list(batch[0].vertices()) == [0, 1, 2]
        assert list(batch[0].vertices(include_roots=False)) == [1, 2]

    def test_repr(self, batch):
        assert "Sample(index=0" in repr(batch[0])

"""Transit→samples map and kernel-class partitioning."""

import numpy as np
import pytest

from repro.api.types import NULL_VERTEX
from repro.core.scheduling import (
    BLOCK_LIMIT,
    SUBWARP_LIMIT,
    classify_transits,
)
from repro.core.transit_map import build_transit_map, flatten_transits


class TestFlatten:
    def test_basic(self):
        transits = np.array([[3, 5], [5, NULL_VERTEX]])
        sample_ids, cols, vals = flatten_transits(transits)
        assert list(sample_ids) == [0, 0, 1]
        assert list(cols) == [0, 1, 0]
        assert list(vals) == [3, 5, 5]

    def test_all_null(self):
        transits = np.full((3, 2), NULL_VERTEX)
        sample_ids, cols, vals = flatten_transits(transits)
        assert vals.size == 0


class TestBuildTransitMap:
    def test_grouping(self):
        transits = np.array([[4], [1], [4], [6], [4]])
        tmap = build_transit_map(transits)
        assert list(tmap.unique_transits) == [1, 4, 6]
        assert list(tmap.counts) == [1, 3, 1]
        assert tmap.num_pairs == 5
        assert tmap.num_transits == 3

    def test_pairs_of_slices(self):
        transits = np.array([[4], [1], [4], [6], [4]])
        tmap = build_transit_map(transits)
        four = tmap.pairs_of(1)
        samples_of_4 = sorted(tmap.sample_ids[four].tolist())
        assert samples_of_4 == [0, 2, 4]
        assert (tmap.transit_vals[four] == 4).all()

    def test_sorted_by_transit(self):
        transits = np.array([[9], [2], [7], [2]])
        tmap = build_transit_map(transits)
        assert (np.diff(tmap.transit_vals) >= 0).all()

    def test_null_pairs_dropped_but_counted_in_total(self):
        transits = np.array([[4, NULL_VERTEX], [NULL_VERTEX, NULL_VERTEX]])
        tmap = build_transit_map(transits)
        assert tmap.num_pairs == 1
        assert tmap.num_total_pairs == 4

    def test_cols_scatter_back(self):
        transits = np.array([[3, 5], [5, 3]])
        tmap = build_transit_map(transits)
        rebuilt = np.full((2, 2), NULL_VERTEX)
        rebuilt[tmap.sample_ids, tmap.cols] = tmap.transit_vals
        assert np.array_equal(rebuilt, transits)

    def test_counts_sum_to_pairs(self, medium_graph, rng):
        transits = rng.integers(0, medium_graph.num_vertices, size=(500, 4))
        tmap = build_transit_map(transits)
        assert tmap.counts.sum() == tmap.num_pairs
        assert np.array_equal(np.diff(tmap.offsets), tmap.counts)


class TestClassify:
    def test_boundaries_table2(self):
        # needed = counts * m: <32 sub-warp, 32..1024 block, >1024 grid.
        counts = np.array([31, 32, 1024, 1025])
        classes = classify_transits(counts, m=1)
        assert list(classes["subwarp"]) == [0]
        assert list(classes["block"]) == [1, 2]
        assert list(classes["grid"]) == [3]

    def test_m_scales_needed(self):
        counts = np.array([4])
        assert list(classify_transits(counts, m=10)["block"]) == [0]
        assert list(classify_transits(counts, m=1)["subwarp"]) == [0]

    def test_partition_is_exact(self, rng):
        counts = rng.integers(1, 3000, size=200)
        classes = classify_transits(counts, m=1)
        combined = np.concatenate([classes["subwarp"], classes["block"],
                                   classes["grid"]])
        assert sorted(combined.tolist()) == list(range(200))

    def test_zero_m_treated_as_one(self):
        counts = np.array([10])
        assert list(classify_transits(counts, m=0)["subwarp"]) == [0]

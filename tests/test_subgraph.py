"""Sample -> GNN structure conversion utilities."""

import numpy as np
import pytest

from repro.api.apps import ClusterGCN, FastGCN
from repro.api.sample import SampleBatch
from repro.api.types import NULL_VERTEX
from repro.core.engine import NextDoorEngine
from repro.train.subgraph import (
    LocalCSR,
    induced_adjacency,
    layer_matrix,
    unique_vertices,
)


class TestLocalCSR:
    def test_dense_and_matvec_agree(self):
        indptr = np.array([0, 2, 3])
        indices = np.array([0, 1, 1])
        values = np.array([0.5, 0.5, 1.0])
        csr = LocalCSR(indptr, indices, values, np.array([7, 9]))
        x = np.array([[1.0], [2.0]])
        assert np.allclose(csr.dense() @ x, csr.matvec(x))

    def test_nnz(self):
        csr = LocalCSR(np.array([0, 1]), np.array([0]), np.ones(1),
                       np.array([3]))
        assert csr.nnz == 1
        assert csr.num_rows == 1


class TestInducedAdjacency:
    def test_clustergcn_rows_normalised(self, medium_graph):
        app = ClusterGCN(num_clusters=8, clusters_per_sample=2)
        result = NextDoorEngine().run(app, medium_graph, num_samples=2,
                                      seed=0)
        csr = induced_adjacency(result.batch, 0)
        assert csr.num_rows > 0
        dense = csr.dense()
        sums = dense.sum(axis=1)
        assert np.allclose(sums[sums > 0], 1.0)

    def test_unnormalised_counts_edges(self, medium_graph):
        app = ClusterGCN(num_clusters=8, clusters_per_sample=2)
        result = NextDoorEngine().run(app, medium_graph, num_samples=1,
                                      seed=0)
        csr = induced_adjacency(result.batch, 0, normalize=False)
        assert csr.nnz == result.batch.sample_edges(0).shape[0]

    def test_local_to_global_mapping(self, medium_graph):
        app = ClusterGCN(num_clusters=8, clusters_per_sample=2)
        result = NextDoorEngine().run(app, medium_graph, num_samples=1,
                                      seed=0)
        csr = induced_adjacency(result.batch, 0, normalize=False)
        # Every local edge maps back to a real graph edge.
        for row in range(min(csr.num_rows, 50)):
            lo, hi = csr.indptr[row], csr.indptr[row + 1]
            u = int(csr.local_to_global[row])
            for col in csr.indices[lo:hi]:
                assert medium_graph.has_edge(u,
                                             int(csr.local_to_global[col]))

    def test_empty_sample(self, tiny_graph):
        batch = SampleBatch(tiny_graph,
                            np.full((1, 1), NULL_VERTEX, dtype=np.int64))
        csr = induced_adjacency(batch, 0)
        assert csr.num_rows == 0


class TestLayerMatrix:
    def test_rows_normalised_bipartite(self, medium_graph):
        app = FastGCN(step_size=16, batch_size=8)
        result = NextDoorEngine().run(app, medium_graph, num_samples=4,
                                      seed=0)
        transits, new, matrix = layer_matrix(result.batch, 0, step=0)
        assert matrix.shape == (transits.size, new.size)
        sums = matrix.sum(axis=1)
        assert np.allclose(sums[sums > 0], 1.0)

    def test_entries_are_graph_edges(self, medium_graph):
        app = FastGCN(step_size=16, batch_size=8)
        result = NextDoorEngine().run(app, medium_graph, num_samples=4,
                                      seed=0)
        transits, new, matrix = layer_matrix(result.batch, 1, step=1)
        rows, cols = np.nonzero(matrix)
        for i, j in zip(rows, cols):
            assert medium_graph.has_edge(int(transits[i]), int(new[j]))

    def test_out_of_range_step(self, medium_graph):
        app = FastGCN(step_size=8, batch_size=4)
        result = NextDoorEngine().run(app, medium_graph, num_samples=2,
                                      seed=0)
        with pytest.raises(IndexError):
            layer_matrix(result.batch, 0, step=99)


class TestUniqueVertices:
    def test_relabel_round_trip(self):
        arrays = [np.array([[5, 9], [5, NULL_VERTEX]]),
                  np.array([[9, 12]])]
        verts, relabelled = unique_vertices(arrays)
        assert list(verts) == [5, 9, 12]
        # Local ids map back to the original vertices.
        for original, local in zip(arrays, relabelled):
            mask = original != NULL_VERTEX
            assert np.array_equal(verts[local[mask]], original[mask])
            assert (local[~mask] == NULL_VERTEX).all()

    def test_all_null(self):
        verts, relabelled = unique_vertices(
            [np.full((2, 2), NULL_VERTEX, dtype=np.int64)])
        assert verts.size == 0
        assert (relabelled[0] == NULL_VERTEX).all()

"""Pure-numpy statistical kernels behind the verification suites."""

import math

import numpy as np
import pytest

from repro.verify.stats import (
    ALPHA,
    binned_lengths,
    chi_square_gof,
    chi_square_homogeneity,
    chi_square_sf,
    gammainc_upper,
    geometric_pmf,
    ks_1sample,
    ks_sf,
)


class TestGamma:
    def test_q_at_zero_is_one(self):
        assert gammainc_upper(3.0, 0.0) == 1.0

    def test_exponential_special_case(self):
        # Q(1, x) = exp(-x)
        for x in (0.1, 1.0, 5.0, 20.0):
            assert gammainc_upper(1.0, x) == pytest.approx(math.exp(-x),
                                                           rel=1e-12)

    def test_half_integer_known_value(self):
        # Q(1/2, x) = erfc(sqrt(x))
        for x in (0.25, 1.0, 4.0):
            assert gammainc_upper(0.5, x) == pytest.approx(
                math.erfc(math.sqrt(x)), rel=1e-10)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            gammainc_upper(0.0, 1.0)
        with pytest.raises(ValueError):
            gammainc_upper(1.0, -1.0)


class TestChiSquareSF:
    def test_df2_closed_form(self):
        # SF of chi2(2) is exp(-x/2)
        for x in (0.5, 2.0, 10.0):
            assert chi_square_sf(x, 2) == pytest.approx(
                math.exp(-x / 2.0), rel=1e-12)

    def test_matches_scipy(self):
        sps = pytest.importorskip("scipy.stats")
        for df in (1, 3, 7, 30):
            for x in (0.5, 5.0, 25.0, 80.0):
                assert chi_square_sf(x, df) == pytest.approx(
                    float(sps.chi2.sf(x, df)), rel=1e-8, abs=1e-300)


class TestChiSquareGof:
    def test_perfect_fit_high_p(self):
        obs = np.array([100.0, 100.0, 100.0, 100.0])
        stat, p = chi_square_gof(obs, np.ones(4))
        assert stat == 0.0
        assert p == 1.0

    def test_unnormalised_weights_ok(self):
        rng = np.random.default_rng(0)
        weights = np.array([1.0, 2.0, 3.0])
        draws = rng.choice(3, size=6000, p=weights / weights.sum())
        obs = np.bincount(draws, minlength=3)
        _, p = chi_square_gof(obs, weights * 17.0)
        assert p > ALPHA

    def test_detects_wrong_distribution(self):
        rng = np.random.default_rng(1)
        draws = rng.choice(3, size=6000, p=[0.5, 0.3, 0.2])
        obs = np.bincount(draws, minlength=3)
        _, p = chi_square_gof(obs, np.ones(3))
        assert p < 1e-12

    def test_matches_scipy(self):
        sps = pytest.importorskip("scipy.stats")
        obs = np.array([120.0, 95.0, 101.0, 84.0])
        stat, p = chi_square_gof(obs, np.ones(4), min_expected=0.0)
        ref = sps.chisquare(obs)
        assert stat == pytest.approx(float(ref.statistic), rel=1e-10)
        assert p == pytest.approx(float(ref.pvalue), rel=1e-8)

    def test_pools_sparse_bins(self):
        obs = np.array([500.0, 480.0, 2.0, 1.0, 0.0, 1.0])
        exp = np.array([500.0, 480.0, 1.0, 1.0, 1.0, 1.0])
        stat, p = chi_square_gof(obs, exp)
        assert math.isfinite(stat)
        assert p > ALPHA

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            chi_square_gof(np.ones(3), np.ones(4))


class TestHomogeneity:
    def test_same_distribution_passes(self):
        rng = np.random.default_rng(2)
        a = rng.multinomial(4000, np.ones(10) / 10)
        b = rng.multinomial(6000, np.ones(10) / 10)
        _, p = chi_square_homogeneity(a, b)
        assert p > ALPHA

    def test_different_distribution_fails(self):
        rng = np.random.default_rng(3)
        a = rng.multinomial(4000, np.ones(10) / 10)
        probs = np.linspace(1, 4, 10)
        b = rng.multinomial(4000, probs / probs.sum())
        _, p = chi_square_homogeneity(a, b)
        assert p < 1e-12

    def test_matches_scipy_contingency(self):
        sps = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(4)
        a = rng.multinomial(3000, np.ones(8) / 8)
        b = rng.multinomial(5000, np.ones(8) / 8)
        stat, p = chi_square_homogeneity(a, b, min_expected=0.0)
        ref = sps.chi2_contingency(np.vstack([a, b]), correction=False)
        assert stat == pytest.approx(float(ref.statistic), rel=1e-10)
        assert p == pytest.approx(float(ref.pvalue), rel=1e-8)

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            chi_square_homogeneity(np.zeros(3), np.ones(3))


class TestKS:
    def test_ks_sf_endpoints(self):
        assert ks_sf(0.0) == 1.0
        assert ks_sf(10.0) < 1e-80

    def test_uniform_samples_pass(self):
        rng = np.random.default_rng(5)
        x = rng.uniform(size=5000)
        d, p = ks_1sample(x, lambda v: v)
        assert d < 0.03
        assert p > ALPHA

    def test_wrong_cdf_fails(self):
        rng = np.random.default_rng(6)
        x = rng.uniform(size=5000) ** 2
        _, p = ks_1sample(x, lambda v: v)
        assert p < 1e-12

    def test_matches_scipy_statistic(self):
        sps = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(7)
        x = rng.uniform(size=800)
        d, p = ks_1sample(x, lambda v: v)
        ref = sps.kstest(x, "uniform")
        assert d == pytest.approx(float(ref.statistic), abs=1e-12)
        # Asymptotic Kolmogorov series vs scipy's exact distribution.
        assert p == pytest.approx(float(ref.pvalue), abs=5e-3)


class TestGeometricBins:
    def test_pmf(self):
        assert geometric_pmf(np.array([0]), 0.25)[0] == pytest.approx(0.25)
        assert geometric_pmf(np.array([2]), 0.25)[0] == pytest.approx(
            0.75 ** 2 * 0.25)

    def test_binned_lengths_mass_sums_to_one(self):
        lengths = np.array([0, 1, 1, 5, 40])
        observed, expected = binned_lengths(lengths, max_bin=10, p=0.2)
        assert observed.sum() == lengths.size
        assert expected.sum() == pytest.approx(1.0)

    def test_capped_walks_land_in_tail(self):
        lengths = np.full(100, 64)  # every walk hit a step cap
        observed, _ = binned_lengths(lengths, max_bin=16, p=0.1)
        assert observed[-1] == 100


@pytest.mark.stat
class TestAnalyticSuite:
    def test_every_check_passes_comfortably(self):
        from repro.verify.analytic import run_statistical_checks
        results = run_statistical_checks()
        families = {r.family for r in results}
        assert {"walk", "khop", "collective"} <= families
        for r in results:
            assert r.passed, str(r)
            # Fixed seeds make p-values constants; keep them far from
            # the ALPHA boundary so kernel tweaks can't flip a check.
            assert r.pvalue > 10 * ALPHA, str(r)

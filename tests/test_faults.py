"""Fault-plan grammar and activation (repro.runtime.faults)."""

import pytest

from repro.runtime.faults import (
    FAULT_NAMES,
    PLAN_ENV,
    FaultPlan,
    active_plan,
)


class TestParse:
    def test_none_and_blank_parse_to_none(self):
        assert FaultPlan.parse(None) is None
        assert FaultPlan.parse("") is None
        assert FaultPlan.parse("  ,  ") is None

    def test_simple_spec(self):
        plan = FaultPlan.parse("kill-before-chunk:3")
        assert len(plan.specs) == 1
        spec = plan.specs[0]
        assert spec.name == "kill-before-chunk"
        assert spec.arg == (3,)
        assert spec.remaining == 1
        assert plan.spec == "kill-before-chunk:3"

    def test_step_dot_chunk_arg(self):
        plan = FaultPlan.parse("kill-after-chunk:2.5")
        assert plan.specs[0].arg == (2, 5)

    def test_times_field(self):
        assert FaultPlan.parse("pipe-eof:1:4").specs[0].remaining == 4
        assert FaultPlan.parse("pipe-eof:1:*").specs[0].remaining is None

    def test_multiple_specs(self):
        plan = FaultPlan.parse("kill-before-chunk:1, chunk-error:0.2")
        assert [s.name for s in plan.specs] == ["kill-before-chunk",
                                                "chunk-error"]

    def test_argless_parent_faults(self):
        for name in ("shm-export-fail", "broadcast-fail",
                     "unpicklable-app"):
            plan = FaultPlan.parse(name)
            assert plan.specs[0].arg == ()

    def test_unknown_name_rejected_loudly(self):
        with pytest.raises(ValueError, match="unknown fault"):
            FaultPlan.parse("kill-worker:3")

    def test_missing_required_arg_rejected(self):
        with pytest.raises(ValueError, match="needs an arg"):
            FaultPlan.parse("kill-before-chunk")

    def test_bad_arg_rejected(self):
        with pytest.raises(ValueError, match="STEP.CHUNK"):
            FaultPlan.parse("kill-before-chunk:x")

    def test_bad_times_rejected(self):
        with pytest.raises(ValueError, match="times"):
            FaultPlan.parse("pipe-eof:1:zero")
        with pytest.raises(ValueError, match="times"):
            FaultPlan.parse("pipe-eof:1:0")

    def test_too_many_fields_rejected(self):
        with pytest.raises(ValueError, match="too many"):
            FaultPlan.parse("pipe-eof:1:2:3")

    def test_every_fault_name_parses(self):
        for name in FAULT_NAMES:
            spec = name if name in ("shm-export-fail", "broadcast-fail",
                                    "unpicklable-app") else f"{name}:0"
            assert FaultPlan.parse(spec) is not None


class TestShould:
    def test_chunk_arg_matches_any_step(self):
        plan = FaultPlan.parse("kill-before-chunk:4:*")
        assert plan.should("kill-before-chunk", 0, 4)
        assert plan.should("kill-before-chunk", 7, 4)
        assert not plan.should("kill-before-chunk", 0, 5)

    def test_step_chunk_arg_matches_exactly(self):
        plan = FaultPlan.parse("kill-before-chunk:2.4:*")
        assert not plan.should("kill-before-chunk", 0, 4)
        assert plan.should("kill-before-chunk", 2, 4)

    def test_times_budget_is_consumed(self):
        plan = FaultPlan.parse("chunk-error:1:2")
        assert plan.should("chunk-error", 0, 1)
        assert plan.should("chunk-error", 1, 1)
        assert not plan.should("chunk-error", 2, 1)

    def test_unbounded_budget_never_exhausts(self):
        plan = FaultPlan.parse("chunk-error:1:*")
        for step in range(10):
            assert plan.should("chunk-error", step, 1)

    def test_wrong_name_never_fires(self):
        plan = FaultPlan.parse("chunk-error:1")
        assert not plan.should("pipe-eof", 0, 1)

    def test_argless_spec_matches_any_point(self):
        plan = FaultPlan.parse("unpicklable-app")
        assert plan.should("unpicklable-app")
        assert not plan.should("unpicklable-app")  # budget spent


class TestActivePlan:
    def test_unset_env_gives_none(self, monkeypatch):
        monkeypatch.delenv(PLAN_ENV, raising=False)
        assert active_plan() is None

    def test_env_activates_with_fresh_budgets(self, monkeypatch):
        monkeypatch.setenv(PLAN_ENV, "chunk-error:3")
        first = active_plan()
        assert first.should("chunk-error", 0, 3)
        assert not first.should("chunk-error", 0, 3)
        # A fresh parse has a fresh budget.
        assert active_plan().should("chunk-error", 0, 3)

    def test_malformed_env_raises(self, monkeypatch):
        monkeypatch.setenv(PLAN_ENV, "not-a-fault")
        with pytest.raises(ValueError):
            active_plan()

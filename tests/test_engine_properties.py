"""Property-based tests over whole engine runs (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.apps import DeepWalk, KHop, Layer, PPR
from repro.api.types import NULL_VERTEX
from repro.core.engine import NextDoorEngine
from repro.graph.csr import CSRGraph


@st.composite
def run_configs(draw):
    n = draw(st.integers(4, 30))
    num_edges = draw(st.integers(3, 80))
    rng = np.random.default_rng(draw(st.integers(0, 2 ** 31)))
    src = rng.integers(0, n, size=num_edges)
    dst = rng.integers(0, n, size=num_edges)
    keep = src != dst
    edges = np.stack([src[keep], dst[keep]], axis=1)
    graph = CSRGraph.from_edges(n, edges, undirected=True)
    seed = draw(st.integers(0, 2 ** 31))
    samples = draw(st.integers(1, 12))
    return graph, seed, samples


def assert_valid_output(graph, result):
    out = result.get_final_samples()
    arrays = out if isinstance(out, list) else [out]
    for arr in arrays:
        live = arr[arr != NULL_VERTEX]
        if live.size:
            assert live.min() >= 0
            assert live.max() < graph.num_vertices


class TestEngineRunProperties:
    @given(run_configs(), st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_deepwalk_output_always_valid(self, config, length):
        graph, seed, samples = config
        if graph.non_isolated_vertices().size == 0:
            return
        result = NextDoorEngine().run(DeepWalk(length), graph,
                                      num_samples=samples, seed=seed)
        assert_valid_output(graph, result)
        assert result.get_final_samples().shape == (samples, length)
        assert result.seconds > 0

    @given(run_configs())
    @settings(max_examples=30, deadline=None)
    def test_khop_output_always_valid(self, config):
        graph, seed, samples = config
        if graph.non_isolated_vertices().size == 0:
            return
        result = NextDoorEngine().run(KHop((3, 2)), graph,
                                      num_samples=samples, seed=seed)
        assert_valid_output(graph, result)
        hops = result.get_final_samples()
        assert hops[0].shape == (samples, 3)
        assert hops[1].shape == (samples, 6)

    @given(run_configs())
    @settings(max_examples=20, deadline=None)
    def test_ppr_never_exceeds_cap(self, config):
        graph, seed, samples = config
        if graph.non_isolated_vertices().size == 0:
            return
        result = NextDoorEngine().run(PPR(termination_prob=0.3,
                                          max_steps=25),
                                      graph, num_samples=samples,
                                      seed=seed)
        assert result.steps_run <= 25
        assert_valid_output(graph, result)

    @given(run_configs())
    @settings(max_examples=20, deadline=None)
    def test_layer_respects_max_size(self, config):
        graph, seed, samples = config
        if graph.non_isolated_vertices().size == 0:
            return
        result = NextDoorEngine().run(Layer(step_size=4, max_size=10),
                                      graph, num_samples=samples,
                                      seed=seed)
        assert_valid_output(graph, result)
        out = result.get_final_samples()
        live = (out != NULL_VERTEX).sum(axis=1)
        assert (live <= 10 + 4).all()

    @given(run_configs(), st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_determinism_property(self, config, length):
        graph, seed, samples = config
        if graph.non_isolated_vertices().size == 0:
            return
        a = NextDoorEngine().run(DeepWalk(length), graph,
                                 num_samples=samples, seed=seed)
        b = NextDoorEngine().run(DeepWalk(length), graph,
                                 num_samples=samples, seed=seed)
        assert np.array_equal(a.get_final_samples(),
                              b.get_final_samples())
        assert a.seconds == b.seconds

    @given(run_configs())
    @settings(max_examples=15, deadline=None)
    def test_multi_gpu_preserves_validity(self, config):
        graph, seed, samples = config
        if graph.non_isolated_vertices().size == 0:
            return
        result = NextDoorEngine().run(DeepWalk(4), graph,
                                      num_samples=samples, seed=seed,
                                      num_devices=3)
        assert result.batch.num_samples == samples
        assert_valid_output(graph, result)

"""paper_values: the machine-readable targets and the report join."""

import pytest

from repro.bench.paper_values import (
    FIG7A_BAND,
    FIG7_SP_BAND,
    TABLE3,
    TABLE5,
    compare_results,
)


class TestTargets:
    def test_table3_matches_datasets_module(self):
        from repro.graph import datasets
        for abrv, (nodes, edges, deg) in TABLE3.items():
            spec = next(s for s in datasets.SPECS.values()
                        if s.abrv == abrv)
            assert spec.paper_nodes == nodes
            assert spec.paper_edges == edges
            assert spec.avg_degree == deg

    def test_table5_matches_bench_expectations(self):
        import importlib.util
        import os
        path = os.path.join(os.path.dirname(__file__), "..",
                            "benchmarks", "bench_table5_end_to_end.py")
        spec = importlib.util.spec_from_file_location("b5", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.PAPER == TABLE5

    def test_bands_ordered(self):
        assert FIG7A_BAND[0] < FIG7A_BAND[1]
        assert FIG7_SP_BAND[0] < FIG7_SP_BAND[1]


class TestCompareResults:
    def test_empty_results(self):
        assert compare_results({}) == {}

    def test_fig7a_grading(self):
        report = compare_results({
            "fig7a_vs_knightking": {"DeepWalk": {"ppi": 30.0,
                                                 "livej": 45.0}}})
        assert report["fig7a"]["grade"] == "in band"

    def test_fig7a_near_band(self):
        report = compare_results({
            "fig7a_vs_knightking": {"DeepWalk": {"ppi": 12.0}}})
        assert report["fig7a"]["grade"] == "near band"

    def test_fig7a_off_band(self):
        report = compare_results({
            "fig7a_vs_knightking": {"DeepWalk": {"ppi": 0.5}}})
        assert report["fig7a"]["grade"] == "off band"

    def test_sec84_crossover_detection(self):
        good = compare_results({"sec84_large_graphs": {
            "DeepWalk": {"nd_vs_kk": 0.6},
            "node2vec": {"nd_vs_kk": 1.8}}})
        assert good["sec84"]["grade"] == "in band"
        bad = compare_results({"sec84_large_graphs": {
            "DeepWalk": {"nd_vs_kk": 1.6},
            "node2vec": {"nd_vs_kk": 1.8}}})
        assert bad["sec84"]["grade"] == "off band"

    def test_table5_oom_agreement(self):
        results = {"table5_end_to_end": {
            gnn: {d: (None if v is None else v)
                  for d, v in row.items()}
            for gnn, row in TABLE5.items()}}
        report = compare_results(results)
        assert report["table5"]["grade"] == "in band"

    def test_report_cli(self):
        import io
        from repro.cli import main
        out = io.StringIO()
        code = main(["report"], out=out)
        # Either results exist (0) or a helpful message (1).
        assert code in (0, 1)
        assert out.getvalue()

"""MultiGPU pool semantics."""

import pytest

from repro.gpu.multi_gpu import MultiGPU
from repro.gpu.spec import V100
from repro.gpu.warp import WarpStats


def busy(device, compute):
    kernel = device.new_kernel("k")
    kernel.add_group(1, 1, WarpStats(device.spec).compute(compute))
    device.launch(kernel)


class TestMultiGPU:
    def test_validation(self):
        with pytest.raises(ValueError):
            MultiGPU(0)

    def test_elapsed_is_slowest_device(self):
        pool = MultiGPU(3)
        busy(pool.devices[0], 1000.0)
        busy(pool.devices[1], 5000.0)
        busy(pool.devices[2], 2000.0)
        assert pool.elapsed_seconds == pytest.approx(
            V100.seconds(5000.0))

    def test_coordination_charged_per_run(self):
        pool = MultiGPU(4)
        busy(pool.devices[0], 1000.0)
        base = pool.elapsed_seconds
        pool.record_run()
        assert pool.elapsed_seconds == pytest.approx(
            base + 4 * MultiGPU.COORDINATION_SECONDS)

    def test_merged_metrics(self):
        pool = MultiGPU(2)
        for d in pool.devices:
            kernel = d.new_kernel("k")
            warp = WarpStats(d.spec).global_load(32)
            kernel.add_group(1, 1, warp)
            d.launch(kernel)
        merged = pool.merged_metrics()
        assert merged.counters.global_load_transactions == 16

    def test_device_names_unique(self):
        pool = MultiGPU(4)
        names = {d.name for d in pool.devices}
        assert len(names) == 4

"""Public API surface: what a downstream user imports must exist."""

import importlib

import pytest


class TestTopLevel:
    def test_version(self):
        import repro
        assert repro.__version__

    def test_headline_imports(self):
        from repro import (
            CSRGraph,
            NextDoorEngine,
            Sample,
            SampleBatch,
            SamplingApp,
            SamplingResult,
            SamplingType,
            datasets,
        )
        assert NextDoorEngine and CSRGraph and datasets

    def test_constants(self):
        from repro import INF_STEPS, NULL_VERTEX
        assert NULL_VERTEX == -1
        assert INF_STEPS == -1


class TestAllDeclarations:
    """Every name in a package's __all__ must resolve."""

    @pytest.mark.parametrize("module_name", [
        "repro",
        "repro.api",
        "repro.api.apps",
        "repro.graph",
        "repro.gpu",
        "repro.core",
        "repro.baselines",
        "repro.train",
        "repro.bench",
    ])
    def test_all_resolvable(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"


class TestAppRegistry:
    def test_all_apps_instantiable(self):
        from repro.api.apps import ALL_APPS
        for cls in ALL_APPS:
            app = cls()
            assert app.name
            assert app.steps() != 0

    def test_random_walk_set(self):
        from repro.api.apps import RANDOM_WALKS
        from repro.api.types import SamplingType
        for cls in RANDOM_WALKS:
            app = cls()
            assert app.sampling_type() is SamplingType.INDIVIDUAL
            assert app.sample_size(0) == 1


class TestEngineRegistry:
    def test_cli_engines_cover_baselines(self):
        from repro.cli import ENGINES
        assert set(ENGINES) == {"nextdoor", "sp", "tp", "knightking",
                                "reference", "gunrock", "tigr"}

    def test_engine_names_unique(self):
        from repro.cli import ENGINES
        names = [cls.engine_name for cls in ENGINES.values()]
        assert len(set(names)) == len(names)

"""Property-based tests (hypothesis) for the partition planner.

Three invariants for arbitrary graphs, shard counts, and seeds:
every plan covers all vertices exactly once, assignment ids respect
the shard-count bounds, and the modeled cost recorded across
refinement iterations is monotone non-increasing (only strictly
improving moves are applied).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.netmodel import NetworkSpec
from repro.dist.planner import (
    PartitionPlan,
    modeled_partition_cost,
    plan_partition,
    random_balanced_plan,
    solve_fractions,
)
from repro.graph.csr import CSRGraph


@st.composite
def graphs(draw, max_vertices=28, max_edges=70):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    edges = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=max_edges))
    return CSRGraph.from_edges(n, edges)


@st.composite
def plan_cases(draw):
    graph = draw(graphs())
    num_shards = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    return graph, num_shards, seed


class TestPlanProperties:
    @settings(max_examples=40, deadline=None)
    @given(plan_cases())
    def test_covers_all_vertices_exactly_once(self, case):
        graph, num_shards, seed = case
        plan = plan_partition(graph, num_shards, seed=seed,
                              refine_iters=8)
        assert plan.assignment.shape == (graph.num_vertices,)
        # Assignment is a vector indexed by vertex: each vertex appears
        # in exactly the one shard it maps to, and every shard's member
        # lists together cover the vertex set exactly once.
        members = [np.nonzero(plan.assignment == s)[0]
                   for s in range(num_shards)]
        covered = (np.concatenate(members) if members
                   else np.zeros(0, np.int64))
        assert sorted(covered.tolist()) == list(
            range(graph.num_vertices))

    @settings(max_examples=40, deadline=None)
    @given(plan_cases())
    def test_respects_shard_bounds(self, case):
        graph, num_shards, seed = case
        plan = plan_partition(graph, num_shards, seed=seed,
                              refine_iters=8)
        assert plan.num_shards == num_shards
        if plan.assignment.size:
            assert plan.assignment.min() >= 0
            assert plan.assignment.max() < num_shards

    @settings(max_examples=40, deadline=None)
    @given(plan_cases())
    def test_cost_monotone_across_refinement(self, case):
        graph, num_shards, seed = case
        plan = plan_partition(graph, num_shards, seed=seed,
                              refine_iters=16)
        history = plan.cost_history
        assert len(history) == plan.refine_moves + 1
        assert all(b <= a for a, b in zip(history, history[1:]))

    @settings(max_examples=20, deadline=None)
    @given(plan_cases())
    def test_deterministic(self, case):
        graph, num_shards, seed = case
        a = plan_partition(graph, num_shards, seed=seed, refine_iters=8)
        b = plan_partition(graph, num_shards, seed=seed, refine_iters=8)
        assert np.array_equal(a.assignment, b.assignment)
        assert a.cost_history == b.cost_history


class TestSolveFractions:
    def test_sums_to_one(self):
        f = solve_fractions(np.ones(4), compute_seconds=1.0,
                            out_seconds=0.1, in_seconds=0.1)
        assert f.shape == (4,)
        assert f.sum() == pytest.approx(1.0)
        assert (f > 0).all()

    def test_faster_machines_get_more(self):
        f = solve_fractions([1.0, 2.0], compute_seconds=1.0)
        assert f[1] > f[0]

    def test_single_shard(self):
        assert solve_fractions([3.0], compute_seconds=1.0).tolist() \
            == [1.0]

    def test_rejects_bad_speeds(self):
        with pytest.raises(ValueError):
            solve_fractions([], compute_seconds=1.0)
        with pytest.raises(ValueError):
            solve_fractions([1.0, 0.0], compute_seconds=1.0)


class TestModeledCost:
    def test_single_shard_has_no_cut(self, medium_graph):
        cost = modeled_partition_cost(
            medium_graph, np.zeros(medium_graph.num_vertices, np.int64),
            1)
        assert cost.edge_cut == 0
        assert cost.balance == 1.0

    def test_cut_counts_cross_edges(self, tiny_graph):
        per_vertex = np.arange(tiny_graph.num_vertices, dtype=np.int64)
        cost = modeled_partition_cost(tiny_graph, per_vertex,
                                      tiny_graph.num_vertices)
        assert cost.edge_cut == tiny_graph.num_edges

    def test_barrier_included(self, tiny_graph):
        net = NetworkSpec(barrier_s=1.0)
        cost = modeled_partition_cost(
            tiny_graph, np.zeros(tiny_graph.num_vertices, np.int64), 1,
            net=net)
        assert cost.max_seconds >= 1.0


class TestPlanSerialization:
    def test_roundtrip(self, medium_graph):
        plan = plan_partition(medium_graph, 3, seed=5)
        loaded = PartitionPlan.from_json(plan.to_json())
        assert np.array_equal(loaded.assignment, plan.assignment)
        assert loaded.cost.max_seconds == plan.cost.max_seconds
        assert loaded.method == plan.method
        loaded.validate_for(medium_graph)

    def test_save_load(self, medium_graph, tmp_path):
        plan = plan_partition(medium_graph, 2, seed=1)
        path = str(tmp_path / "plan.json")
        plan.save(path)
        loaded = PartitionPlan.load(path)
        assert np.array_equal(loaded.assignment, plan.assignment)

    def test_rejects_wrong_version(self, medium_graph):
        data = plan_partition(medium_graph, 2).to_json()
        data["version"] = 999
        with pytest.raises(ValueError):
            PartitionPlan.from_json(data)

    def test_rejects_wrong_graph(self, medium_graph, tiny_graph):
        plan = plan_partition(medium_graph, 2)
        with pytest.raises(ValueError):
            plan.validate_for(tiny_graph)


class TestPlannerVsRandom:
    def test_never_loses_to_random_same_seed(self, medium_graph):
        # The random balanced assignment is one of the planner's
        # refinement seeds, so the planner's modeled cost can never
        # exceed it.
        for seed in (0, 1, 2):
            plan = plan_partition(medium_graph, 4, seed=seed)
            rand = random_balanced_plan(medium_graph, 4, seed=seed)
            assert plan.cost.max_seconds <= rand.cost.max_seconds

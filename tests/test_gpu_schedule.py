"""Event-granular scheduler, and its agreement with the analytic bound."""

import numpy as np
import pytest

from repro.gpu.kernel import KernelSpec
from repro.gpu.schedule import MAX_SIMULATED_BLOCKS, simulate_blocks
from repro.gpu.spec import GPUSpec, V100
from repro.gpu.warp import WarpStats


def make_kernel(spec=V100):
    return KernelSpec("k", spec)


def warp(compute, spec=V100):
    return WarpStats(spec).compute(compute)


class TestExactScheduler:
    def test_empty(self):
        result = simulate_blocks(V100, [])
        assert result.wall_cycles == 0.0

    def test_single_block(self):
        k = make_kernel()
        k.add_group(1, 1, warp(500.0))
        result = k.evaluate(exact=True)
        assert result.wall_cycles == pytest.approx(500.0)
        assert result.sm_busy_cycles == pytest.approx(500.0)

    def test_blocks_fill_sms_concurrently(self):
        # 80 identical blocks on 80 SMs: wall = one block.
        k = make_kernel()
        k.add_group(V100.num_sms, 1, warp(100.0))
        result = k.evaluate(exact=True)
        assert result.wall_cycles == pytest.approx(100.0)
        assert result.sm_busy_cycles == pytest.approx(100.0 * V100.num_sms)

    def test_serialisation_when_oversubscribed(self):
        spec = GPUSpec(num_sms=1, max_blocks_per_sm=1)
        k = make_kernel(spec)
        k.add_group(3, 1, WarpStats(spec).compute(100.0))
        result = k.evaluate(exact=True)
        assert result.wall_cycles == pytest.approx(300.0)

    def test_warp_limit_respected(self):
        # Blocks of 32 warps: only 2 fit per SM (64-warp limit).
        spec = GPUSpec(num_sms=1)
        k = make_kernel(spec)
        k.add_group(4, 32, WarpStats(spec).compute(4.0))
        result = k.evaluate(exact=True)
        one_block = 32 * 4.0 / spec.warp_schedulers_per_sm
        assert result.wall_cycles == pytest.approx(2 * one_block)

    def test_smem_limit_respected(self):
        spec = GPUSpec(num_sms=1)
        k = make_kernel(spec)
        k.add_group(4, 1, WarpStats(spec).compute(100.0),
                    shared_mem_bytes=spec.shared_mem_per_sm // 2)
        result = k.evaluate(exact=True)
        assert result.wall_cycles == pytest.approx(200.0)

    def test_longest_first_packing(self):
        # One long + many short on one SM slot: the long block is
        # placed first, total = max(long, sum short) overlap impossible
        # with 1 slot -> serial sum.
        spec = GPUSpec(num_sms=1, max_blocks_per_sm=1)
        k = make_kernel(spec)
        k.add_group(1, 1, WarpStats(spec).compute(1000.0))
        k.add_group(5, 1, WarpStats(spec).compute(10.0))
        result = k.evaluate(exact=True)
        assert result.wall_cycles == pytest.approx(1050.0)

    def test_block_cap(self):
        k = make_kernel()
        k.add_group(MAX_SIMULATED_BLOCKS + 1, 1, warp(1.0))
        with pytest.raises(ValueError, match="cap"):
            k.evaluate(exact=True)

    def test_bandwidth_floor_applies(self):
        w = warp(1.0)
        w.counters.global_load_transactions = 1e9
        k = make_kernel()
        k.add_group(1, 1, w)
        expected = 1e9 * V100.transaction_bytes / V100.dram_bytes_per_cycle
        assert k.evaluate(exact=True).wall_cycles >= expected


class TestAnalyticAgreement:
    """The fast bound must track the exact schedule within a small
    factor across random workloads — the validation that justifies
    using the analytic evaluator on the engines' hot path."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_homogeneous(self, seed):
        rng = np.random.default_rng(seed)
        k = make_kernel()
        k.add_group(int(rng.integers(1, 4000)),
                    int(rng.integers(1, 16)),
                    warp(float(rng.uniform(10, 2000))))
        fast = k.evaluate().wall_cycles
        exact = k.evaluate(exact=True).wall_cycles
        assert exact / 3.0 <= fast <= exact * 3.0

    @pytest.mark.parametrize("seed", range(8))
    def test_random_heterogeneous(self, seed):
        rng = np.random.default_rng(100 + seed)
        k = make_kernel()
        for _ in range(int(rng.integers(2, 6))):
            k.add_group(int(rng.integers(1, 500)),
                        int(rng.integers(1, 32)),
                        warp(float(rng.uniform(10, 5000))),
                        shared_mem_bytes=int(rng.integers(0, 32 * 1024)))
        fast = k.evaluate().wall_cycles
        exact = k.evaluate(exact=True).wall_cycles
        assert exact / 4.0 <= fast <= exact * 4.0

    def test_analytic_never_below_span(self):
        k = make_kernel()
        k.add_group(10, 1, warp(10.0))
        k.add_group(1, 1, warp(9999.0))
        assert k.evaluate().wall_cycles >= 9999.0
        assert k.evaluate(exact=True).wall_cycles >= 9999.0

    def test_counters_identical(self):
        w = WarpStats(V100).global_load(32).global_store(32)
        k = make_kernel()
        k.add_group(7, 3, w)
        fast = k.evaluate().counters
        exact = k.evaluate(exact=True).counters
        assert fast.global_load_transactions == \
            exact.global_load_transactions
        assert fast.global_store_transactions == \
            exact.global_store_transactions

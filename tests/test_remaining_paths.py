"""Coverage for the remaining less-travelled paths."""

import io

import numpy as np
import pytest

from repro.api.apps import FastGCN, Layer
from repro.baselines import FrontierEngine, MessagePassingEngine
from repro.core.engine import NextDoorEngine, _merge_batches
from repro.api.sample import SampleBatch
from repro.api.types import NULL_VERTEX


class TestFrameworkCollectivePaths:
    """Section 7 engines also execute collective applications (the
    paper reports 'similar results on other applications')."""

    @pytest.mark.parametrize("engine_cls",
                             [FrontierEngine, MessagePassingEngine])
    def test_layer_runs_and_is_slower(self, engine_cls, medium_graph):
        nd = NextDoorEngine().run(Layer(step_size=10, max_size=30),
                                  medium_graph, num_samples=32, seed=0)
        fw = engine_cls().run(Layer(step_size=10, max_size=30),
                              medium_graph, num_samples=32, seed=0)
        assert fw.seconds > nd.seconds
        assert fw.batch.num_samples == 32

    @pytest.mark.parametrize("engine_cls",
                             [FrontierEngine, MessagePassingEngine])
    def test_fastgcn_records_edges(self, engine_cls, medium_graph):
        r = engine_cls().run(FastGCN(step_size=8, batch_size=4),
                             medium_graph, num_samples=4, seed=0)
        assert len(r.batch.edges) == 2


class TestMergeBatches:
    def test_single_shard_passthrough(self, medium_graph):
        batch = SampleBatch(medium_graph, np.array([[1], [2]]))
        assert _merge_batches(medium_graph, [batch]) is batch

    def test_empty_shards_rejected(self, medium_graph):
        with pytest.raises(ValueError):
            _merge_batches(medium_graph, [])

    def test_pads_uneven_steps(self, medium_graph):
        a = SampleBatch(medium_graph, np.array([[1]]))
        a.append_step(np.array([[5]]))
        a.append_step(np.array([[6]]))
        b = SampleBatch(medium_graph, np.array([[2]]))
        b.append_step(np.array([[7]]))
        merged = _merge_batches(medium_graph, [a, b])
        assert merged.num_samples == 2
        assert merged.num_steps == 2
        assert merged.step_vertices[1][1, 0] == NULL_VERTEX


class TestSamplingResultSave:
    def test_save_walk(self, medium_graph, tmp_path):
        from repro.api.apps import DeepWalk
        r = NextDoorEngine().run(DeepWalk(4), medium_graph,
                                 num_samples=8, seed=0)
        path = str(tmp_path / "w.npz")
        r.save(path)
        data = np.load(path)
        assert data["samples"].shape == (8, 4)
        assert data["roots"].shape == (8, 1)

    def test_save_with_edges(self, medium_graph, tmp_path):
        r = NextDoorEngine().run(FastGCN(step_size=8, batch_size=4),
                                 medium_graph, num_samples=4, seed=0)
        path = str(tmp_path / "f.npz")
        r.save(path)
        data = np.load(path)
        assert "edges" in data
        assert data["edges"].shape[1] == 3

    def test_save_per_step(self, medium_graph, tmp_path):
        from repro.api.apps import KHop
        r = NextDoorEngine().run(KHop((3, 2)), medium_graph,
                                 num_samples=8, seed=0)
        path = str(tmp_path / "k.npz")
        r.save(path)
        data = np.load(path)
        assert data["hop0"].shape == (8, 3)
        assert data["hop1"].shape == (8, 6)


class TestInfCap:
    def test_cap_binds_for_never_terminating_walk(self, medium_graph):
        from repro.api.apps import PPR
        # Termination probability so small no walk dies in 15 steps.
        r = NextDoorEngine().run(PPR(termination_prob=1e-9,
                                     max_steps=15),
                                 medium_graph, num_samples=16, seed=0)
        assert r.steps_run == 15


class TestCliFiguresCommand:
    def test_renders_from_custom_dirs(self, tmp_path):
        from repro.cli import main
        results = tmp_path / "r"
        results.mkdir()
        (results / "fig10_multi_gpu.json").write_text(
            '{"DeepWalk": {"ppi": 1.3, "livej": 2.8}}')
        out = io.StringIO()
        code = main(["figures", "--results", str(results),
                     "--out", str(tmp_path / "f")], out=out)
        assert code == 0
        assert "fig10_multi_gpu.svg" in out.getvalue()

    def test_empty_dir_message(self, tmp_path):
        from repro.cli import main
        out = io.StringIO()
        code = main(["figures", "--results", str(tmp_path),
                     "--out", str(tmp_path / "f")], out=out)
        assert code == 1

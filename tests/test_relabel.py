"""Locality-aware CSR relabeling: accessor parity + bitwise round trip.

The contract: relabeling is a pure vertex permutation applied at graph
load and inverted on output, so ``permute -> sample ->
inverse-permute`` is bitwise-identical to sampling the unpermuted
graph — across every engine, worker count, and app family.
"""

import numpy as np
import pytest

from repro.api import apps
from repro.baselines import (
    FrontierEngine,
    KnightKingEngine,
    MessagePassingEngine,
    ReferenceSamplerEngine,
    SampleParallelEngine,
    VanillaTPEngine,
)
from repro.core.engine import NextDoorEngine
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_graph
from repro.graph.relabel import (
    RELABEL_ORDERS,
    RelabeledCSRGraph,
    canonicalize_array,
    degree_order_permutation,
    relabel_graph,
)
from repro.api.types import NULL_VERTEX


@pytest.fixture(scope="module")
def plain():
    return rmat_graph(600, 3600, seed=7, name="relabel-rmat")


@pytest.fixture(scope="module")
def weighted(plain):
    return plain.with_random_weights(seed=7)


@pytest.fixture(scope="module")
def relabeled(plain):
    return relabel_graph(plain, "degree")


class TestPermutation:
    def test_degree_order_is_permutation(self, plain):
        perm = degree_order_permutation(plain)
        assert np.array_equal(np.sort(perm),
                              np.arange(plain.num_vertices))

    def test_high_degree_vertices_get_low_ids(self, plain):
        perm = degree_order_permutation(plain)
        degrees = plain.degrees()
        new_deg = np.empty_like(degrees)
        new_deg[perm] = degrees
        assert np.all(np.diff(new_deg) <= 0)

    def test_stable_within_equal_degree(self, plain):
        perm = degree_order_permutation(plain)
        degrees = plain.degrees()
        canonical_of = np.argsort(perm)
        for new_id in range(1, plain.num_vertices):
            a, b = canonical_of[new_id - 1], canonical_of[new_id]
            if degrees[a] == degrees[b]:
                assert a < b  # stable sort: original order preserved


class TestAccessorParity:
    """Every CSRGraph accessor agrees with the plain graph modulo the
    permutation."""

    def test_counts(self, plain, relabeled):
        assert relabeled.num_vertices == plain.num_vertices
        assert relabeled.num_edges == plain.num_edges

    def test_degrees(self, plain, relabeled):
        perm = relabeled.perm
        for v in range(plain.num_vertices):
            assert relabeled.degree(int(perm[v])) == plain.degree(v)

    def test_degrees_array(self, plain, relabeled):
        assert np.array_equal(relabeled.degrees_array[relabeled.perm],
                              plain.degrees_array)

    def test_neighbors_are_permuted(self, plain, relabeled):
        perm = relabeled.perm
        for v in range(0, plain.num_vertices, 37):
            expected = perm[plain.neighbors(v)]
            assert np.array_equal(relabeled.neighbors(int(perm[v])),
                                  expected)

    def test_has_edge(self, plain, relabeled):
        perm = relabeled.perm
        rng = np.random.default_rng(3)
        for _ in range(50):
            u = int(rng.integers(plain.num_vertices))
            w = int(rng.integers(plain.num_vertices))
            assert relabeled.has_edge(int(perm[u]), int(perm[w])) == \
                plain.has_edge(u, w)

    def test_has_edges_bulk(self, plain, relabeled):
        perm = relabeled.perm
        rng = np.random.default_rng(4)
        us = rng.integers(plain.num_vertices, size=200)
        ws = rng.integers(plain.num_vertices, size=200)
        assert np.array_equal(relabeled.has_edges(perm[us], perm[ws]),
                              plain.has_edges(us, ws))

    def test_non_isolated_round_trips(self, plain, relabeled):
        got = relabeled.canonical_of[relabeled.non_isolated_vertices()]
        assert np.array_equal(got, plain.non_isolated_vertices())

    def test_weight_caches_bitwise(self, weighted):
        rel = relabel_graph(weighted, "degree")
        # The edge arrays keep the original physical layout, so every
        # float accumulation is the exact same op sequence.
        assert np.array_equal(rel.global_weight_cumsum(),
                              weighted.global_weight_cumsum())
        base, total = rel.weight_row_spans()
        pbase, ptotal = weighted.weight_row_spans()
        canon = rel.canonical_of
        assert np.array_equal(base[np.argsort(canon)][canon],
                              base[np.arange(len(base))])  # sanity
        assert np.array_equal(base, pbase[canon])
        assert np.array_equal(total, ptotal[canon])
        assert np.array_equal(rel.row_max_weight(),
                              weighted.row_max_weight()[canon])

    def test_to_original(self, plain, relabeled):
        orig = relabeled.to_original()
        assert np.array_equal(orig.indptr, plain.indptr)
        assert np.array_equal(orig.indices, plain.indices)
        assert orig.name == plain.name

    def test_double_relabel_rejected(self, relabeled):
        with pytest.raises(ValueError):
            relabel_graph(relabeled, "degree")

    def test_unknown_order_rejected(self, plain):
        with pytest.raises(ValueError):
            relabel_graph(plain, "bfs")

    def test_repr_names_order(self, relabeled):
        assert "degree" in repr(relabeled)
        assert isinstance(relabeled, RelabeledCSRGraph)
        assert isinstance(relabeled, CSRGraph)


class TestCanonicalizeArray:
    def test_preserves_null(self):
        canon = np.array([2, 0, 1], dtype=np.int64)
        arr = np.array([0, NULL_VERTEX, 2], dtype=np.int64)
        out = canonicalize_array(arr, canon)
        assert out[0] == 2
        assert out[1] == NULL_VERTEX
        assert out[2] == 1


def _digest(batch):
    parts = [batch.roots.tobytes()]
    parts += [a.tobytes() for a in batch.step_vertices]
    parts += [a.tobytes() for a in (batch.edges or ())]
    return b"".join(parts)


#: Engines x the apps they support (KnightKing only walks).
ENGINE_CASES = [
    (NextDoorEngine, "DeepWalk"),
    (NextDoorEngine, "k-hop"),
    (SampleParallelEngine, "DeepWalk"),
    (VanillaTPEngine, "k-hop"),
    (FrontierEngine, "DeepWalk"),
    (MessagePassingEngine, "k-hop"),
    (ReferenceSamplerEngine, "DeepWalk"),
    (KnightKingEngine, "DeepWalk"),
]


def _paper_app(name):
    from repro.bench.runner import paper_app
    return paper_app(name)


class TestBitwiseRoundTrip:
    @pytest.mark.parametrize("engine_cls,app_name", ENGINE_CASES)
    @pytest.mark.parametrize("workers", [0, 2])
    def test_all_engines(self, plain, relabeled, engine_cls, app_name,
                         workers):
        expected = engine_cls(workers=workers).run(
            _paper_app(app_name), plain, num_samples=64, seed=11)
        actual = engine_cls(workers=workers).run(
            _paper_app(app_name), relabeled, num_samples=64, seed=11)
        assert _digest(actual.batch) == _digest(expected.batch)

    @pytest.mark.parametrize("app_name", ["FastGCN", "LADIES",
                                          "ClusterGCN", "MVS",
                                          "MultiRW", "PPR", "Layer",
                                          "node2vec"])
    def test_all_apps_nextdoor(self, plain, relabeled, app_name):
        expected = NextDoorEngine().run(_paper_app(app_name), plain,
                                        num_samples=48, seed=13)
        actual = NextDoorEngine().run(_paper_app(app_name), relabeled,
                                      num_samples=48, seed=13)
        assert _digest(actual.batch) == _digest(expected.batch)

    def test_weighted_walk(self, weighted):
        rel = relabel_graph(weighted, "degree")
        app = apps.DeepWalk(walk_length=8)
        expected = NextDoorEngine().run(app, weighted, num_samples=64,
                                        seed=5)
        actual = NextDoorEngine().run(apps.DeepWalk(walk_length=8), rel,
                                      num_samples=64, seed=5)
        assert _digest(actual.batch) == _digest(expected.batch)

    def test_explicit_roots_are_original_ids(self, plain, relabeled):
        roots = np.array([5, 17, 3, 5], dtype=np.int64)
        app = apps.DeepWalk(walk_length=6)
        expected = NextDoorEngine().run(app, plain, roots=roots, seed=2)
        actual = NextDoorEngine().run(apps.DeepWalk(walk_length=6),
                                      relabeled, roots=roots, seed=2)
        assert np.array_equal(actual.batch.roots.ravel(), roots)
        assert _digest(actual.batch) == _digest(expected.batch)

    def test_multi_gpu(self, plain, relabeled):
        app = apps.DeepWalk(walk_length=6)
        expected = NextDoorEngine().run(app, plain, num_samples=64,
                                        seed=3, num_devices=2)
        actual = NextDoorEngine().run(apps.DeepWalk(walk_length=6),
                                      relabeled, num_samples=64, seed=3,
                                      num_devices=2)
        assert _digest(actual.batch) == _digest(expected.batch)

    def test_modeled_charges_identical(self, plain, relabeled):
        """Canonical grouping keeps the kernel plan — and therefore
        the modeled charges — identical, not just the samples."""
        app = apps.KHop(fanouts=(6, 3))
        expected = NextDoorEngine().run(app, plain, num_samples=64,
                                        seed=9)
        actual = NextDoorEngine().run(apps.KHop(fanouts=(6, 3)),
                                      relabeled, num_samples=64, seed=9)
        assert actual.seconds == expected.seconds
        assert actual.metrics.as_dict() == expected.metrics.as_dict()


class TestSharedMemory:
    def test_relabeled_graph_round_trips_through_shm(self, relabeled):
        from repro.runtime import shm
        handle = shm.export_graph(relabeled)
        try:
            imported = shm.import_graph(handle)
            try:
                assert isinstance(imported, RelabeledCSRGraph)
                assert np.array_equal(imported.perm, relabeled.perm)
                assert np.array_equal(imported.canonical_of,
                                      relabeled.canonical_of)
                assert np.array_equal(imported.degrees_array,
                                      relabeled.degrees_array)
                assert np.array_equal(imported.indptr, relabeled.indptr)
                assert imported.relabel_order == "degree"
            finally:
                shm.close_imported(imported)
        finally:
            shm.release_graph(relabeled)

    def test_orders_registry(self):
        assert RELABEL_ORDERS == ("degree",)

"""Cross-engine differential testing machinery.

Fast tier-1 cases pin one representative app per family (walk, k-hop,
collective) to a small graph; the full app × graph sweep is stat-marked.
"""

import numpy as np
import pytest

from repro.api.apps import DeepWalk, KHop, LADIES
from repro.core.engine import NextDoorEngine
from repro.graph.generators import rmat_graph
from repro.verify.differential import (
    DIFF_APPS,
    canonical_batch,
    check_invariants,
    diff_batches,
    differential_case,
    run_differential_checks,
)

SMALL = rmat_graph(128, 512, seed=11, name="diff-small")


class TestCanonicalDiff:
    def _batch(self, app, seed=0):
        return NextDoorEngine().run(app, SMALL, num_samples=8,
                                    seed=seed).batch

    def test_identical_batches_have_no_diff(self):
        app = DeepWalk(walk_length=4)
        a = canonical_batch(app, self._batch(app))
        b = canonical_batch(app, self._batch(app))
        assert diff_batches(a, b) == []

    def test_different_seeds_diff(self):
        app = DeepWalk(walk_length=4)
        a = canonical_batch(app, self._batch(app, seed=0))
        b = canonical_batch(app, self._batch(app, seed=1))
        assert diff_batches(a, b)

    def test_shape_mismatch_reported(self):
        a = canonical_batch(KHop((4, 2)), self._batch(KHop((4, 2))))
        b = canonical_batch(KHop((6, 2)), self._batch(KHop((6, 2))))
        assert any("shape" in p for p in diff_batches(a, b))

    def test_missing_key_reported(self):
        app = DeepWalk(walk_length=4)
        a = canonical_batch(app, self._batch(app))
        b = {k: v for k, v in a.items() if k != "step2"}
        assert any("only one output" in p for p in diff_batches(a, b))

    def test_collective_rows_sorted(self):
        app = LADIES(step_size=8, batch_size=4)
        canon = canonical_batch(app, self._batch(app))
        for key, arr in canon.items():
            if key.startswith("step"):
                assert np.array_equal(arr, np.sort(arr, axis=1))


class TestInvariants:
    def test_clean_walk_passes(self):
        app = DeepWalk(walk_length=6)
        batch = NextDoorEngine().run(app, SMALL, num_samples=8,
                                     seed=0).batch
        assert check_invariants(app, batch, SMALL) == []

    def test_tampered_walk_detected(self):
        app = DeepWalk(walk_length=6)
        batch = NextDoorEngine().run(app, SMALL, num_samples=8,
                                     seed=0).batch
        # Rewire one hop to a vertex that is almost surely not adjacent.
        batch.step_vertices[2][0, 0] = (
            (batch.step_vertices[1][0, 0] + 57) % SMALL.num_vertices)
        problems = check_invariants(app, batch, SMALL)
        assert any("not" in p and "edges" in p for p in problems)

    def test_tampered_khop_detected(self):
        app = KHop(fanouts=(4, 2))
        batch = NextDoorEngine().run(app, SMALL, num_samples=8,
                                     seed=0).batch
        batch.step_vertices[1][:, :] = (
            batch.step_vertices[1] + 1) % SMALL.num_vertices
        problems = check_invariants(app, batch, SMALL)
        assert any("adjacent" in p for p in problems)

    def test_out_of_range_detected(self):
        app = DeepWalk(walk_length=4)
        batch = NextDoorEngine().run(app, SMALL, num_samples=8,
                                     seed=0).batch
        batch.step_vertices[0][0, 0] = SMALL.num_vertices + 3
        problems = check_invariants(app, batch, SMALL)
        assert any("out-of-range" in p for p in problems)

    def test_duplicate_in_unique_step_detected(self):
        app = KHop(fanouts=(6,), unique_per_step=True)
        batch = NextDoorEngine().run(app, SMALL, num_samples=8,
                                     seed=0).batch
        batch.step_vertices[0][0, 1] = batch.step_vertices[0][0, 0]
        problems = check_invariants(app, batch, SMALL)
        assert any("duplicate" in p for p in problems)


class TestDifferentialCases:
    """One engine-agreement case per family stays in tier 1."""

    @pytest.mark.parametrize("app_name", ["DeepWalk", "k-hop", "LADIES"])
    def test_family_case_passes(self, app_name):
        result = differential_case(app_name, SMALL, seed=5,
                                   num_samples=24)
        assert result.passed, result.detail
        assert "engines agree" in result.detail

    def test_family_labels(self):
        assert differential_case("DeepWalk", SMALL, seed=5,
                                 num_samples=8).family == "walk"
        assert differential_case("k-hop", SMALL, seed=5,
                                 num_samples=8).family == "khop"
        assert differential_case("LADIES", SMALL, seed=5,
                                 num_samples=8).family == "collective"


@pytest.mark.stat
class TestFullSweep:
    def test_every_app_on_every_graph(self):
        results = run_differential_checks(seed=0)
        assert len(results) == 2 * len(DIFF_APPS)
        failures = [str(r) for r in results if not r.passed]
        assert not failures, "\n".join(failures)

"""Command-line interface."""

import io

import numpy as np
import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["sample", "--app", "bogus"])
        assert excinfo.value.code == 2

    def test_unknown_app_message_names_choices(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sample", "--app", "bogus"])
        err = capsys.readouterr().err
        assert "invalid choice" in err and "DeepWalk" in err


class TestErrorPaths:
    def test_unknown_graph_name(self):
        code, out = run_cli(["sample", "--app", "DeepWalk",
                             "--graph", "bogus"])
        assert code == 2
        assert "unknown graph" in out
        assert "ppi" in out  # the message lists valid datasets

    def test_missing_graph_file(self, tmp_path):
        path = str(tmp_path / "does_not_exist.txt")
        code, out = run_cli(["sample", "--app", "DeepWalk",
                             "--graph", path, "--samples", "4"])
        assert code == 2
        assert "not found" in out and path in out

    def test_unreadable_graph_file(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 2 3\n")
        code, out = run_cli(["sample", "--app", "DeepWalk",
                             "--graph", str(path), "--samples", "4"])
        assert code == 2
        assert "could not load" in out

    def test_graph_from_edge_list_file(self, tmp_path):
        path = tmp_path / "tri.txt"
        path.write_text("0 1\n1 2\n2 0\n")
        code, out = run_cli(["sample", "--app", "DeepWalk",
                             "--graph", str(path), "--samples", "4"])
        assert code == 0
        assert "tri.txt" in out

    def test_negative_workers_sample(self):
        code, out = run_cli(["sample", "--app", "DeepWalk",
                             "--graph", "ppi", "--samples", "4",
                             "--workers", "-2"])
        assert code == 2
        assert "--workers" in out and "-2" in out

    def test_negative_workers_compare(self):
        code, out = run_cli(["compare", "--apps", "DeepWalk",
                             "--graph", "ppi", "--workers", "-1"])
        assert code == 2
        assert "--workers" in out

    def test_trace_and_out_conflict(self, tmp_path):
        path = str(tmp_path / "same.json")
        code, out = run_cli(["sample", "--app", "DeepWalk",
                             "--graph", "ppi", "--samples", "4",
                             "--trace", path, "--out", path])
        assert code == 2
        assert "same file" in out

    def test_failed_command_writes_no_trace(self, tmp_path):
        trace_path = tmp_path / "t.json"
        code, out = run_cli(["sample", "--app", "DeepWalk",
                             "--graph", "bogus",
                             "--trace", str(trace_path)])
        assert code == 2
        assert not trace_path.exists()
        assert "trace not written" in out


class TestDatasets:
    def test_lists_table3(self):
        code, out = run_cli(["datasets"])
        assert code == 0
        for abrv in ("PPI", "Orkut", "FriendS"):
            assert abrv in out


class TestSample:
    def test_basic_run(self):
        code, out = run_cli(["sample", "--app", "DeepWalk",
                             "--graph", "ppi", "--samples", "64",
                             "--seed", "1"])
        assert code == 0
        assert "modeled time" in out
        assert "scheduling_index" in out

    def test_save_npz(self, tmp_path):
        path = str(tmp_path / "out.npz")
        code, out = run_cli(["sample", "--app", "DeepWalk",
                             "--graph", "ppi", "--samples", "32",
                             "--out", path])
        assert code == 0
        data = np.load(path)
        assert data["samples"].shape == (32, 100)
        assert data["roots"].shape == (32, 1)

    def test_save_per_step_npz(self, tmp_path):
        path = str(tmp_path / "hops.npz")
        code, _ = run_cli(["sample", "--app", "k-hop", "--graph", "ppi",
                           "--samples", "16", "--out", path])
        assert code == 0
        data = np.load(path)
        assert data["hop0"].shape == (16, 25)
        assert data["hop1"].shape == (16, 250)

    def test_engine_choice(self):
        code, out = run_cli(["sample", "--app", "DeepWalk",
                             "--graph", "ppi", "--samples", "32",
                             "--engine", "knightking"])
        assert code == 0
        assert "KnightKing" in out

    def test_unsupported_combination_reports_error(self):
        code, out = run_cli(["sample", "--app", "k-hop", "--graph", "ppi",
                             "--samples", "8", "--engine", "knightking"])
        assert code == 2
        assert "error" in out

    def test_devices_flag(self):
        code, out = run_cli(["sample", "--app", "DeepWalk",
                             "--graph", "ppi", "--samples", "64",
                             "--devices", "4"])
        assert code == 0

    def test_devices_rejected_for_cpu_engine(self):
        code, out = run_cli(["sample", "--app", "DeepWalk",
                             "--graph", "ppi", "--samples", "8",
                             "--engine", "knightking", "--devices", "4"])
        assert code == 2


class TestResilienceFlags:
    def test_bad_pool_timeout_rejected(self):
        code, out = run_cli(["sample", "--app", "DeepWalk",
                             "--graph", "ppi", "--samples", "8",
                             "--pool-timeout", "0"])
        assert code == 2
        assert "--pool-timeout" in out

    def test_pool_timeout_env_is_scoped_to_the_command(self):
        import os
        from repro.runtime.pool import TIMEOUT_ENV
        assert TIMEOUT_ENV not in os.environ
        code, _ = run_cli(["sample", "--app", "DeepWalk",
                           "--graph", "ppi", "--samples", "8",
                           "--pool-timeout", "33.5"])
        assert code == 0
        assert TIMEOUT_ENV not in os.environ

    def test_bad_fault_plan_rejected(self):
        code, out = run_cli(["sample", "--app", "DeepWalk",
                             "--graph", "ppi", "--samples", "8",
                             "--fault-plan", "explode-now:3"])
        assert code == 2
        assert "unknown fault" in out

    def test_resume_requires_checkpoint(self):
        code, out = run_cli(["sample", "--app", "DeepWalk",
                             "--graph", "ppi", "--samples", "8",
                             "--resume"])
        assert code == 2
        assert "--checkpoint" in out

    def test_checkpoint_rejected_for_standalone_engines(self, tmp_path):
        code, out = run_cli(["sample", "--app", "DeepWalk",
                             "--graph", "ppi", "--samples", "8",
                             "--engine", "knightking",
                             "--checkpoint", str(tmp_path / "ck")])
        assert code == 2
        assert "--checkpoint" in out

    def test_interrupt_then_resume_reproduces_samples(self, tmp_path):
        clean = str(tmp_path / "clean.npz")
        resumed = str(tmp_path / "resumed.npz")
        ckpt = str(tmp_path / "ckpt")
        base = ["sample", "--app", "DeepWalk", "--graph", "ppi",
                "--samples", "64", "--seed", "3"]
        code, _ = run_cli(base + ["--out", clean])
        assert code == 0
        code, out = run_cli(base + ["--checkpoint", ckpt,
                                    "--fault-plan", "interrupt-step:2"])
        assert code == 1
        assert "--resume" in out  # the error says how to continue
        code, _ = run_cli(base + ["--checkpoint", ckpt, "--resume",
                                  "--out", resumed])
        assert code == 0
        a, b = np.load(clean), np.load(resumed)
        assert np.array_equal(a["samples"], b["samples"])
        assert np.array_equal(a["roots"], b["roots"])


class TestCompare:
    def test_table_printed(self):
        code, out = run_cli(["compare", "--apps", "k-hop",
                             "--graph", "ppi"])
        assert code == 0
        assert "NextDoor" in out
        assert "KnightKing" in out
        assert "n/a" in out  # KnightKing can't run k-hop


class TestVerify:
    def test_golden_suite_passes(self):
        code, out = run_cli(["verify", "--suite", "golden"])
        assert code == 0
        assert "10/10 checks passed" in out
        assert "PASS" in out and "FAIL" not in out

    def test_unknown_suite_rejected(self):
        code, out = run_cli(["verify", "--suite", "bogus"])
        assert code == 2
        assert "unknown suite 'bogus'" in out
        # The error names every valid choice, so the fix is in the
        # message itself.
        from repro.verify import SUITE_NAMES
        for name in SUITE_NAMES:
            assert name in out

    def test_verify_list_enumerates_suites(self):
        code, out = run_cli(["verify", "--list"])
        assert code == 0
        from repro.verify.runner import SUITE_INFO, SUITE_NAMES
        for name in SUITE_NAMES:
            assert name in out
            assert str(SUITE_INFO[name][0]) in out
        total = sum(SUITE_INFO[n][0] for n in SUITE_NAMES)
        assert f"{len(SUITE_NAMES)} suites, {total} checks" in out

    def test_negative_workers_rejected(self):
        code, out = run_cli(["verify", "--suite", "golden",
                             "--workers", "-1"])
        assert code == 2
        assert "--workers" in out

    def test_regen_requires_golden_suite(self):
        code, out = run_cli(["verify", "--suite", "stat", "--regen"])
        assert code == 2
        assert "--suite golden" in out

    @pytest.mark.stat
    def test_all_suites_pass(self):
        code, out = run_cli(["verify", "--suite", "all"])
        assert code == 0
        assert "FAIL" not in out


class TestBenchAndTrain:
    def test_bench_lists(self):
        code, out = run_cli(["bench"])
        assert code == 0

    def test_train_runs(self):
        code, out = run_cli(["train", "--graph", "ppi", "--epochs", "1",
                             "--batch-size", "1024"])
        assert code == 0
        assert "epoch 0" in out

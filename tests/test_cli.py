"""Command-line interface."""

import io

import numpy as np
import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sample", "--app", "bogus"])

    def test_unknown_graph_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sample", "--app", "DeepWalk",
                                       "--graph", "bogus"])


class TestDatasets:
    def test_lists_table3(self):
        code, out = run_cli(["datasets"])
        assert code == 0
        for abrv in ("PPI", "Orkut", "FriendS"):
            assert abrv in out


class TestSample:
    def test_basic_run(self):
        code, out = run_cli(["sample", "--app", "DeepWalk",
                             "--graph", "ppi", "--samples", "64",
                             "--seed", "1"])
        assert code == 0
        assert "modeled time" in out
        assert "scheduling_index" in out

    def test_save_npz(self, tmp_path):
        path = str(tmp_path / "out.npz")
        code, out = run_cli(["sample", "--app", "DeepWalk",
                             "--graph", "ppi", "--samples", "32",
                             "--out", path])
        assert code == 0
        data = np.load(path)
        assert data["samples"].shape == (32, 100)
        assert data["roots"].shape == (32, 1)

    def test_save_per_step_npz(self, tmp_path):
        path = str(tmp_path / "hops.npz")
        code, _ = run_cli(["sample", "--app", "k-hop", "--graph", "ppi",
                           "--samples", "16", "--out", path])
        assert code == 0
        data = np.load(path)
        assert data["hop0"].shape == (16, 25)
        assert data["hop1"].shape == (16, 250)

    def test_engine_choice(self):
        code, out = run_cli(["sample", "--app", "DeepWalk",
                             "--graph", "ppi", "--samples", "32",
                             "--engine", "knightking"])
        assert code == 0
        assert "KnightKing" in out

    def test_unsupported_combination_reports_error(self):
        code, out = run_cli(["sample", "--app", "k-hop", "--graph", "ppi",
                             "--samples", "8", "--engine", "knightking"])
        assert code == 2
        assert "error" in out

    def test_devices_flag(self):
        code, out = run_cli(["sample", "--app", "DeepWalk",
                             "--graph", "ppi", "--samples", "64",
                             "--devices", "4"])
        assert code == 0

    def test_devices_rejected_for_cpu_engine(self):
        code, out = run_cli(["sample", "--app", "DeepWalk",
                             "--graph", "ppi", "--samples", "8",
                             "--engine", "knightking", "--devices", "4"])
        assert code == 2


class TestCompare:
    def test_table_printed(self):
        code, out = run_cli(["compare", "--apps", "k-hop",
                             "--graph", "ppi"])
        assert code == 0
        assert "NextDoor" in out
        assert "KnightKing" in out
        assert "n/a" in out  # KnightKing can't run k-hop


class TestBenchAndTrain:
    def test_bench_lists(self):
        code, out = run_cli(["bench"])
        assert code == 0

    def test_train_runs(self):
        code, out = run_cli(["train", "--graph", "ppi", "--epochs", "1",
                             "--batch-size", "1024"])
        assert code == 0
        assert "epoch 0" in out

"""validate_app: the contract checker for custom samplers."""

import numpy as np
import pytest

from repro.api.app import SamplingApp, SamplingType
from repro.api.apps import (
    ClusterGCN,
    DeepWalk,
    FastGCN,
    KHop,
    LADIES,
    Layer,
    MHRW,
    MVS,
    MultiRW,
    Node2Vec,
    PPR,
    RWR,
)
from repro.api.types import NULL_VERTEX
from repro.api.validate import AppValidationError, validate_app

ALL_BUILTINS = [
    lambda: DeepWalk(5), lambda: PPR(max_steps=20),
    lambda: Node2Vec(walk_length=5),
    lambda: MultiRW(num_roots=4, walk_length=5),
    lambda: KHop((4, 2)), lambda: MVS(batch_size=4),
    lambda: Layer(step_size=5, max_size=15),
    lambda: FastGCN(step_size=8, batch_size=4),
    lambda: LADIES(step_size=8, batch_size=4),
    lambda: ClusterGCN(num_clusters=8, clusters_per_sample=2),
    lambda: RWR(restart_prob=0.2, walk_length=5),
    lambda: MHRW(walk_length=5),
]


class TestBuiltinsValidate:
    @pytest.mark.parametrize("factory", ALL_BUILTINS)
    def test_every_builtin_passes(self, factory, medium_graph):
        checks = validate_app(factory(), medium_graph)
        assert "end-to-end engine run" in checks
        assert "seeded determinism" in checks


class GoodCustom(SamplingApp):
    name = "good"

    def steps(self):
        return 2

    def sample_size(self, step):
        return 2

    def next(self, sample, transits, src_edges, step, rng):
        if src_edges.size == 0:
            return NULL_VERTEX
        return int(src_edges[0])


class TestCustomApps:
    def test_good_custom_passes(self, medium_graph):
        assert validate_app(GoodCustom(), medium_graph)

    def test_bad_steps_type(self, medium_graph):
        class Bad(GoodCustom):
            def steps(self):
                return "lots"
        with pytest.raises(AppValidationError, match="steps"):
            validate_app(Bad(), medium_graph)

    def test_bad_steps_value(self, medium_graph):
        class Bad(GoodCustom):
            def steps(self):
                return 0
        with pytest.raises(AppValidationError, match="steps"):
            validate_app(Bad(), medium_graph)

    def test_bad_sample_size(self, medium_graph):
        class Bad(GoodCustom):
            def sample_size(self, step):
                return -3
        with pytest.raises(AppValidationError, match="sample_size"):
            validate_app(Bad(), medium_graph)

    def test_zero_sample_size_rejected_for_individual(self, medium_graph):
        class Bad(GoodCustom):
            def sample_size(self, step):
                return 0
        with pytest.raises(AppValidationError,
                           match="sample_size.*>= 1.*individual"):
            validate_app(Bad(), medium_graph)

    def test_zero_sample_size_one_step_rejected(self, medium_graph):
        class Bad(GoodCustom):
            def sample_size(self, step):
                return 0 if step == 1 else 2
        with pytest.raises(AppValidationError, match="sample_size\\(1\\)"):
            validate_app(Bad(), medium_graph)

    def test_record_only_collective_still_validates(self, medium_graph):
        # ClusterGCN's m = 0 record-only steps are the legal exception.
        checks = validate_app(
            ClusterGCN(num_clusters=8, clusters_per_sample=2),
            medium_graph)
        assert "sample_size()/unique() per step" in checks


class TestConstructorValidation:
    """Degenerate parameters fail at construction, not mid-run."""

    @pytest.mark.parametrize("build", [
        lambda: DeepWalk(walk_length=0),
        lambda: Node2Vec(walk_length=0),
        lambda: Node2Vec(p=0.0),
        lambda: Node2Vec(q=-1.0),
        lambda: MultiRW(num_roots=0, walk_length=5),
        lambda: MultiRW(num_roots=4, walk_length=0),
        lambda: PPR(max_steps=0),
        lambda: PPR(termination_prob=0.0),
        lambda: KHop(fanouts=()),
        lambda: KHop(fanouts=(4, 0)),
        lambda: KHop(fanouts=(-1,)),
        lambda: MVS(batch_size=0),
        lambda: Layer(step_size=0, max_size=10),
        lambda: FastGCN(step_size=0),
        lambda: LADIES(step_size=8, batch_size=0),
    ])
    def test_rejected(self, build):
        with pytest.raises(ValueError):
            build()

    def test_next_out_of_range(self, medium_graph):
        class Bad(GoodCustom):
            def next(self, sample, transits, src_edges, step, rng):
                return 10 ** 9
        with pytest.raises(AppValidationError, match="invalid vertex"):
            validate_app(Bad(), medium_graph)

    def test_bad_roots_shape(self, medium_graph):
        class Bad(GoodCustom):
            def initial_roots(self, graph, num_samples, rng):
                return np.zeros(num_samples, dtype=np.int64)[:, None].T
        with pytest.raises(AppValidationError, match="initial_roots"):
            validate_app(Bad(), medium_graph)

    def test_bad_roots_range(self, medium_graph):
        class Bad(GoodCustom):
            def initial_roots(self, graph, num_samples, rng):
                return np.full((num_samples, 1), 10 ** 9)
        with pytest.raises(AppValidationError, match="out-of-range"):
            validate_app(Bad(), medium_graph)

    def test_bad_vectorised_shape(self, medium_graph):
        class Bad(GoodCustom):
            def sample_neighbors(self, graph, transits, step, rng,
                                 prev_transits=None, batch=None,
                                 sample_ids=None):
                from repro.api.types import StepInfo
                return np.zeros((1, 1), dtype=np.int64), StepInfo()
        with pytest.raises(AppValidationError, match="must return"):
            validate_app(Bad(), medium_graph)

    def test_nondeterministic_state_detected(self, medium_graph):
        import itertools
        counter = itertools.count()

        class Bad(GoodCustom):
            def sample_neighbors(self, graph, transits, step, rng,
                                 prev_transits=None, batch=None,
                                 sample_ids=None):
                from repro.api.types import StepInfo
                transits = np.asarray(transits)
                # Ignores rng: uses global state across runs.
                base = next(counter)
                out = np.full((transits.size, self.sample_size(step)),
                              base % graph.num_vertices, dtype=np.int64)
                return out, StepInfo()
        with pytest.raises(AppValidationError, match="different samples"):
            validate_app(Bad(), medium_graph)

"""KernelCounters / DeviceMetrics arithmetic."""

import pytest

from repro.gpu.metrics import DeviceMetrics, KernelCounters


class TestKernelCounters:
    def test_l2_reads_track_global_loads(self):
        c = KernelCounters(global_load_transactions=10.0)
        assert c.l2_read_transactions == 10.0

    def test_store_efficiency_ideal(self):
        c = KernelCounters(global_store_transactions=8,
                           ideal_global_store_transactions=8)
        assert c.store_efficiency == 1.0

    def test_store_efficiency_scattered(self):
        c = KernelCounters(global_store_transactions=32,
                           ideal_global_store_transactions=8)
        assert c.store_efficiency == pytest.approx(0.25)

    def test_store_efficiency_no_stores(self):
        assert KernelCounters().store_efficiency == 1.0

    def test_store_efficiency_capped_at_one(self):
        c = KernelCounters(global_store_transactions=4,
                           ideal_global_store_transactions=8)
        assert c.store_efficiency == 1.0

    def test_divergence_rate(self):
        c = KernelCounters(branches=10, divergent_branches=3)
        assert c.divergence_rate == pytest.approx(0.3)
        assert KernelCounters().divergence_rate == 0.0

    def test_add(self):
        a = KernelCounters(global_load_transactions=3, compute_cycles=5)
        b = KernelCounters(global_load_transactions=2, compute_cycles=1)
        a.add(b)
        assert a.global_load_transactions == 5
        assert a.compute_cycles == 6

    def test_add_covers_every_field(self):
        a = KernelCounters(**{f: 1.0
                              for f in KernelCounters.__dataclass_fields__})
        a.add(KernelCounters(**{f: 2.0
                                for f in KernelCounters.__dataclass_fields__}))
        for f in KernelCounters.__dataclass_fields__:
            assert getattr(a, f) == 3.0, f

    def test_add_does_not_mutate_other(self):
        a = KernelCounters(branches=1.0)
        b = KernelCounters(branches=2.0)
        a.add(b)
        assert b.branches == 2.0

    def test_scaled(self):
        c = KernelCounters(global_load_transactions=3).scaled(4)
        assert c.global_load_transactions == 12

    def test_scaled_covers_every_field_and_preserves_original(self):
        src = KernelCounters(**{f: 2.0
                                for f in KernelCounters.__dataclass_fields__})
        out = src.scaled(0.5)
        for f in KernelCounters.__dataclass_fields__:
            assert getattr(out, f) == 1.0, f
            assert getattr(src, f) == 2.0, f

    def test_scaled_preserves_ratios(self):
        # Derived properties are ratios, so uniform scaling must not
        # change them — this is what makes per-warp -> per-group valid.
        c = KernelCounters(global_store_transactions=32,
                           ideal_global_store_transactions=8,
                           branches=10, divergent_branches=3)
        s = c.scaled(7.0)
        assert s.store_efficiency == pytest.approx(c.store_efficiency)
        assert s.divergence_rate == pytest.approx(c.divergence_rate)

    def test_as_dict_includes_derived(self):
        d = KernelCounters(global_load_transactions=2).as_dict()
        assert d["l2_read_transactions"] == 2
        assert "store_efficiency" in d

    def test_as_dict_includes_every_raw_field(self):
        d = KernelCounters().as_dict()
        for f in KernelCounters.__dataclass_fields__:
            assert f in d


class TestDeviceMetrics:
    def test_activity_full(self):
        m = DeviceMetrics()
        m.record_kernel(KernelCounters(), busy_cycles=800.0,
                        wall_cycles=10.0, num_sms=80)
        assert m.multiprocessor_activity == 1.0

    def test_activity_partial(self):
        m = DeviceMetrics()
        m.record_kernel(KernelCounters(), busy_cycles=400.0,
                        wall_cycles=10.0, num_sms=80)
        assert m.multiprocessor_activity == pytest.approx(0.5)

    def test_activity_empty(self):
        assert DeviceMetrics().multiprocessor_activity == 0.0

    def test_merge(self):
        a = DeviceMetrics()
        a.record_kernel(KernelCounters(global_load_transactions=1),
                        busy_cycles=1.0, wall_cycles=1.0, num_sms=2)
        b = DeviceMetrics()
        b.record_kernel(KernelCounters(global_load_transactions=2),
                        busy_cycles=1.0, wall_cycles=1.0, num_sms=2)
        a.merge(b)
        assert a.counters.global_load_transactions == 3
        assert a.sm_total_cycles == 4.0

    def test_merge_identity(self):
        a = DeviceMetrics()
        a.record_kernel(KernelCounters(branches=4, divergent_branches=1),
                        busy_cycles=3.0, wall_cycles=2.0, num_sms=4)
        before = a.as_dict()
        a.merge(DeviceMetrics())
        assert a.as_dict() == before

    def test_activity_capped_at_one(self):
        m = DeviceMetrics()
        m.record_kernel(KernelCounters(), busy_cycles=1000.0,
                        wall_cycles=10.0, num_sms=80)
        assert m.multiprocessor_activity == 1.0

    def test_record_kernel_accumulates_counters(self):
        m = DeviceMetrics()
        for _ in range(3):
            m.record_kernel(KernelCounters(global_load_transactions=2.0),
                            busy_cycles=1.0, wall_cycles=1.0, num_sms=1)
        assert m.counters.l2_read_transactions == 6.0
        assert m.sm_busy_cycles == 3.0
        assert m.sm_total_cycles == 3.0

    def test_as_dict(self):
        d = DeviceMetrics().as_dict()
        assert "multiprocessor_activity" in d

    def test_as_dict_combines_counter_and_device_views(self):
        m = DeviceMetrics()
        m.record_kernel(KernelCounters(global_load_transactions=5.0),
                        busy_cycles=4.0, wall_cycles=1.0, num_sms=8)
        d = m.as_dict()
        assert d["l2_read_transactions"] == 5.0
        assert d["multiprocessor_activity"] == pytest.approx(0.5)

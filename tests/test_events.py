"""Structured event log and flight recorder: typed validation, ring
bounds, dump gating, and stream checking."""

import json
import os

import pytest

from repro.obs import get_metrics, reset_metrics
from repro.obs.events import (
    EVENT_FIELDS,
    FLIGHT_DIR_ENV,
    EventLog,
    RING_CAPACITY,
    dump_flight,
    flight_dir,
    get_event_log,
    record,
    reset_events,
    set_flight_tag,
    validate_event_stream,
)


@pytest.fixture(autouse=True)
def _fresh_events():
    reset_events()
    yield
    reset_events()


class TestTypedRecord:
    def test_unknown_type_rejected(self):
        log = EventLog()
        with pytest.raises(ValueError, match="unknown event type"):
            log.record("reactor_meltdown", why="testing")

    def test_missing_required_fields_rejected(self):
        log = EventLog()
        with pytest.raises(ValueError, match="missing fields"):
            log.record("worker_crash", worker_index=0)  # no `why`

    def test_every_declared_type_is_recordable(self):
        log = EventLog()
        for etype, fields in EVENT_FIELDS.items():
            ev = log.record(etype, **{f: 0 for f in fields})
            assert ev["type"] == etype
        validate_event_stream(log.snapshot())

    def test_seq_monotonic_and_t_present(self):
        log = EventLog()
        evs = [log.record("checkpoint_save", chunk_id=i)
               for i in range(5)]
        assert [e["seq"] for e in evs] == [1, 2, 3, 4, 5]
        assert all(e["t"] >= 0 for e in evs)

    def test_extra_fields_ride_along(self):
        log = EventLog()
        ev = log.record("checkpoint_save", chunk_id=3, step=7,
                        kind="chunk")
        assert ev["step"] == 7 and ev["kind"] == "chunk"


class TestRing:
    def test_ring_is_bounded_and_drops_are_counted(self):
        reset_metrics()
        log = EventLog(capacity=8)
        for i in range(20):
            log.record("checkpoint_save", chunk_id=i)
        events = log.snapshot()
        assert len(events) == 8
        # Oldest evicted: the survivors are the 8 most recent.
        assert [e["chunk_id"] for e in events] == list(range(12, 20))
        snap = get_metrics().snapshot()
        assert snap["obs.events_dropped"] == 12.0
        assert snap["obs.events_recorded"] == 20.0

    def test_default_capacity(self):
        assert EventLog()._ring.maxlen == RING_CAPACITY

    def test_reset_restarts_seq(self):
        log = EventLog()
        log.record("degraded_mode", why="x")
        log.set_flight_tag("old")
        log.reset()
        assert log.snapshot() == []
        assert log.flight_tag is None
        assert log.record("degraded_mode", why="y")["seq"] == 1

    def test_snapshot_returns_copies(self):
        log = EventLog()
        log.record("degraded_mode", why="x")
        log.snapshot()[0]["why"] = "mutated"
        assert log.snapshot()[0]["why"] == "x"


class TestFlightDump:
    def test_noop_without_flight_dir(self, monkeypatch):
        monkeypatch.delenv(FLIGHT_DIR_ENV, raising=False)
        assert flight_dir() is None
        record("degraded_mode", why="x")
        assert dump_flight("test") is None

    def test_dump_writes_tagged_jsonl(self, monkeypatch, tmp_path):
        monkeypatch.setenv(FLIGHT_DIR_ENV, str(tmp_path))
        set_flight_tag("deepwalk-ppi-s0-w2")
        record("run_start", app="DeepWalk", graph="ppi", seed=0,
               workers=2)
        record("degraded_mode", why="respawn budget exhausted")
        path = dump_flight("degraded-mode")
        assert path == str(tmp_path / "flight-deepwalk-ppi-s0-w2.jsonl")
        events = [json.loads(line) for line in open(path)]
        assert [e["type"] for e in events] == ["run_start",
                                               "degraded_mode"]
        validate_event_stream(events)

    def test_untagged_dump_uses_fallback_name(self, monkeypatch,
                                              tmp_path):
        monkeypatch.setenv(FLIGHT_DIR_ENV, str(tmp_path))
        record("degraded_mode", why="x")
        path = dump_flight("test")
        assert os.path.basename(path) == "flight-untagged.jsonl"

    def test_dump_never_raises_on_unwritable_dir(self, monkeypatch,
                                                 tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file, not directory")
        monkeypatch.setenv(FLIGHT_DIR_ENV, str(blocker))
        record("degraded_mode", why="x")
        assert dump_flight("test") is None  # swallowed, not raised

    def test_dump_creates_missing_directory(self, monkeypatch,
                                            tmp_path):
        target = tmp_path / "deep" / "flights"
        monkeypatch.setenv(FLIGHT_DIR_ENV, str(target))
        record("degraded_mode", why="x")
        assert dump_flight("test") is not None
        assert target.is_dir()


class TestStreamValidation:
    def test_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="unknown type"):
            validate_event_stream(
                [{"seq": 1, "t": 0.0, "type": "nope"}])

    def test_rejects_missing_required_field(self):
        with pytest.raises(ValueError, match="missing 'why'"):
            validate_event_stream(
                [{"seq": 1, "t": 0.0, "type": "degraded_mode"}])

    def test_rejects_non_increasing_seq(self):
        events = [
            {"seq": 2, "t": 0.0, "type": "degraded_mode", "why": "a"},
            {"seq": 2, "t": 0.1, "type": "degraded_mode", "why": "b"},
        ]
        with pytest.raises(ValueError, match="not increasing"):
            validate_event_stream(events)

    def test_rejects_non_dict_entries(self):
        with pytest.raises(ValueError, match="not an object"):
            validate_event_stream(["garbage"])

    def test_accepts_module_level_stream(self):
        record("run_start", app="a", graph="g", seed=0, workers=0)
        record("checkpoint_save", chunk_id=0)
        validate_event_stream(get_event_log().snapshot())


class TestRuntimeIntegration:
    def test_pooled_crash_records_events(self, monkeypatch):
        """A worker killed mid-run leaves crash/respawn (or retry)
        events in the ring — the flight recorder sees what the
        supervisor saw."""
        from repro.api.apps import DeepWalk
        from repro.core.engine import NextDoorEngine
        from repro.graph import generators
        from repro.runtime.faults import PLAN_ENV
        graph = generators.rmat_graph(num_vertices=300, num_edges=2000,
                                      seed=2, name="events-rmat")
        monkeypatch.setenv(PLAN_ENV, "kill-after-chunk:0.3")
        NextDoorEngine(workers=2, chunk_size=64).run(
            DeepWalk(walk_length=8), graph, num_samples=256, seed=1)
        types = {e["type"] for e in get_event_log().snapshot()}
        assert "run_start" in types
        assert "worker_crash" in types
        assert "worker_respawn" in types
        validate_event_stream(get_event_log().snapshot())

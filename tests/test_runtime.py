"""The multicore sampling runtime (repro.runtime).

The contract under test: the worker pool changes *wall-clock only*.
Samples are bitwise-identical for any worker count (the chunked RNG
plan is a pure function of ``(seed, step, chunk)``), every modeled
charge is untouched (the parent still builds full-batch transit maps),
crashes degrade to in-process execution with correct samples, and no
shared-memory segment outlives its owner.
"""

import os
import subprocess
import sys
import warnings

import numpy as np
import pytest

from repro.api.apps import DeepWalk, KHop, LADIES, Node2Vec
from repro.core.engine import NextDoorEngine, do_sampling
from repro.runtime import (
    DEFAULT_CHUNK_PAIRS,
    ExecutionContext,
    RNGPlan,
    export_graph,
    import_graph,
    release_graph,
    resolve_workers,
)
from repro.runtime.context import WORKERS_ENV, combine_infos
from repro.runtime.pool import get_pool, shutdown_pools
from repro.runtime.shm import close_imported, leaked_segments

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))

#: Small enough to force several chunks per step on the medium graph.
CHUNK = 64


def _run(app_factory, graph, workers, num_samples=256, seed=11, **kw):
    engine = NextDoorEngine(workers=workers, chunk_size=CHUNK)
    with warnings.catch_warnings():
        # A pool fallback would still produce identical samples, but
        # then the test would not be exercising the workers at all.
        warnings.simplefilter("error", RuntimeWarning)
        return engine.run(app_factory(), graph, num_samples=num_samples,
                          seed=seed, **kw)


def _assert_batches_equal(a, b):
    assert a.num_samples == b.num_samples
    assert np.array_equal(a.roots, b.roots)
    assert len(a.step_vertices) == len(b.step_vertices)
    for x, y in zip(a.step_vertices, b.step_vertices):
        assert np.array_equal(x, y)
    assert len(a.edges) == len(b.edges)
    for x, y in zip(a.edges, b.edges):
        assert np.array_equal(x, y)


# ----------------------------------------------------------------------
# The RNG plan: chunk layout and seeds never depend on the worker count.
# ----------------------------------------------------------------------

class TestRNGPlan:
    def test_bounds_cover_range_exactly(self):
        plan = RNGPlan(0, chunk_pairs=100)
        b = plan.individual_bounds(250)
        assert b[0] == 0 and b[-1] == 250
        assert np.all(np.diff(b) > 0)
        assert np.all(np.diff(b)[:-1] == 100)

    def test_bounds_empty_and_single(self):
        plan = RNGPlan(0, chunk_pairs=100)
        assert plan.individual_bounds(0).size == 1
        assert np.array_equal(plan.individual_bounds(40), [0, 40])

    def test_chunk_rng_is_pure_function_of_seed_step_chunk(self):
        a = RNGPlan(5).chunk_rng(3, 7).integers(0, 1 << 30, 16)
        b = RNGPlan(5).chunk_rng(3, 7).integers(0, 1 << 30, 16)
        assert np.array_equal(a, b)

    def test_distinct_chunks_get_distinct_streams(self):
        plan = RNGPlan(5)
        a = plan.chunk_rng(0, 0).integers(0, 1 << 30, 16)
        b = plan.chunk_rng(0, 1).integers(0, 1 << 30, 16)
        c = plan.chunk_rng(1, 0).integers(0, 1 << 30, 16)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_shard_namespaces_do_not_collide(self):
        plan = RNGPlan(5)
        s0 = plan.shard(0).chunk_rng(0, 0).integers(0, 1 << 30, 16)
        s1 = plan.shard(1).chunk_rng(0, 0).integers(0, 1 << 30, 16)
        root = plan.chunk_rng(0, 0).integers(0, 1 << 30, 16)
        assert not np.array_equal(s0, s1)
        assert not np.array_equal(s0, root)

    def test_default_chunk_size(self):
        assert RNGPlan(0).chunk_pairs == DEFAULT_CHUNK_PAIRS


class TestCombineInfos:
    def test_single_info_unchanged(self):
        from repro.api.types import StepInfo
        info = StepInfo(avg_compute_cycles=17.0)
        assert combine_infos([info], [10]) is info

    def test_weighted_mean(self):
        from repro.api.types import StepInfo
        merged = combine_infos(
            [StepInfo(avg_compute_cycles=10.0),
             StepInfo(avg_compute_cycles=20.0)], [3, 1])
        assert merged.avg_compute_cycles == pytest.approx(12.5)


# ----------------------------------------------------------------------
# Zero-copy graph sharing.
# ----------------------------------------------------------------------

class TestSharedGraph:
    def test_round_trip_equality(self, medium_weighted):
        handle = medium_weighted.to_shared()
        try:
            g = import_graph(handle)
            assert np.array_equal(g.indptr, medium_weighted.indptr)
            assert np.array_equal(g.indices, medium_weighted.indices)
            assert np.array_equal(g.weights, medium_weighted.weights)
            assert np.array_equal(g.degrees_array,
                                  medium_weighted.degrees_array)
            assert np.array_equal(g.global_weight_cumsum(),
                                  medium_weighted.global_weight_cumsum())
            assert g.name == medium_weighted.name
            close_imported(g)
        finally:
            release_graph(medium_weighted)

    def test_imported_arrays_are_read_only(self, medium_graph):
        handle = export_graph(medium_graph)
        try:
            g = import_graph(handle)
            with pytest.raises(ValueError):
                g.indices[0] = 0
            close_imported(g)
        finally:
            release_graph(medium_graph)

    def test_export_is_idempotent_per_graph(self, medium_graph):
        try:
            assert export_graph(medium_graph) is export_graph(medium_graph)
        finally:
            release_graph(medium_graph)

    def test_release_removes_segments(self, medium_graph):
        handle = export_graph(medium_graph)
        names = set(handle.segment_names())
        assert names, "export produced no segments"
        assert names <= set(leaked_segments())  # present while owned
        release_graph(medium_graph)
        assert not (names & set(leaked_segments()))


# ----------------------------------------------------------------------
# Bitwise identity: the acceptance criterion.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("workers", [1, 2, 4])
class TestBitwiseIdentity:
    def test_deepwalk(self, medium_weighted, workers):
        r0 = _run(lambda: DeepWalk(walk_length=16), medium_weighted, 0)
        rw = _run(lambda: DeepWalk(walk_length=16), medium_weighted,
                  workers)
        _assert_batches_equal(r0.batch, rw.batch)

    def test_khop(self, medium_graph, workers):
        r0 = _run(lambda: KHop(fanouts=(10, 5)), medium_graph, 0)
        rw = _run(lambda: KHop(fanouts=(10, 5)), medium_graph, workers)
        _assert_batches_equal(r0.batch, rw.batch)

    def test_ladies(self, medium_graph, workers):
        r0 = _run(lambda: LADIES(step_size=16, batch_size=16),
                  medium_graph, 0, num_samples=128)
        rw = _run(lambda: LADIES(step_size=16, batch_size=16),
                  medium_graph, workers, num_samples=128)
        _assert_batches_equal(r0.batch, rw.batch)


class TestMoreIdentity:
    def test_node2vec_prev_transit_chunks(self, medium_weighted):
        """needs_prev_transits apps ship the previous-transit slice."""
        r0 = _run(lambda: Node2Vec(walk_length=12, p=2.0, q=0.5),
                  medium_weighted, 0)
        r2 = _run(lambda: Node2Vec(walk_length=12, p=2.0, q=0.5),
                  medium_weighted, 2)
        _assert_batches_equal(r0.batch, r2.batch)

    def test_multi_device_shards(self, medium_weighted):
        r0 = _run(lambda: DeepWalk(walk_length=12), medium_weighted, 0,
                  num_devices=3)
        r2 = _run(lambda: DeepWalk(walk_length=12), medium_weighted, 2,
                  num_devices=3)
        _assert_batches_equal(r0.batch, r2.batch)

    def test_workers_zero_matches_plain_default(self, medium_weighted):
        """workers=0 with the default chunk size is the canonical
        sampling stream (what every engine produces by default)."""
        a = NextDoorEngine(workers=0).run(DeepWalk(walk_length=8),
                                          medium_weighted,
                                          num_samples=64, seed=3)
        b = NextDoorEngine().run(DeepWalk(walk_length=8),
                                 medium_weighted, num_samples=64, seed=3)
        _assert_batches_equal(a.batch, b.batch)


# ----------------------------------------------------------------------
# The model half is untouched by the runtime.
# ----------------------------------------------------------------------

class TestModeledChargesUnchanged:
    def test_seconds_and_breakdown_identical(self, medium_weighted):
        r0 = _run(lambda: DeepWalk(walk_length=16), medium_weighted, 0)
        r2 = _run(lambda: DeepWalk(walk_length=16), medium_weighted, 2)
        assert r0.seconds == r2.seconds
        assert r0.breakdown == r2.breakdown

    def test_collective_charges_identical(self, medium_graph):
        r0 = _run(lambda: LADIES(step_size=16, batch_size=16),
                  medium_graph, 0, num_samples=128)
        r2 = _run(lambda: LADIES(step_size=16, batch_size=16),
                  medium_graph, 2, num_samples=128)
        assert r0.seconds == r2.seconds
        assert r0.breakdown == r2.breakdown


# ----------------------------------------------------------------------
# Crash resilience and cleanup.
# ----------------------------------------------------------------------

def _kill_worker0_after_begin_run(monkeypatch):
    """Patch begin_run so worker 0 is dead when the first step runs."""
    orig = ExecutionContext.begin_run

    def begin_and_kill(self, app, graph, use_reference=False):
        orig(self, app, graph, use_reference=use_reference)
        if self.pool is not None:
            self.pool.procs[0].terminate()
            self.pool.procs[0].join()

    monkeypatch.setattr(ExecutionContext, "begin_run", begin_and_kill)


class TestCrashFallback:
    def test_respawn_produces_identical_samples(self, medium_weighted,
                                                monkeypatch):
        """A single worker death is healed by the supervisor: no
        degradation warning, identical samples, a respawn recorded."""
        from repro.obs import get_metrics
        expected = _run(lambda: DeepWalk(walk_length=16),
                        medium_weighted, 0)
        _kill_worker0_after_begin_run(monkeypatch)
        respawns = get_metrics().counter("pool.worker_respawns")
        before = respawns.value
        engine = NextDoorEngine(workers=2, chunk_size=CHUNK)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            crashed = engine.run(DeepWalk(walk_length=16),
                                 medium_weighted, num_samples=256,
                                 seed=11)
        _assert_batches_equal(expected.batch, crashed.batch)
        assert expected.seconds == crashed.seconds
        assert respawns.value > before

    def test_fallback_produces_identical_samples(self, medium_weighted,
                                                 monkeypatch):
        """With the respawn budget zeroed, a worker death degrades the
        run to in-process execution — and samples are still identical."""
        monkeypatch.setenv("REPRO_POOL_RESPAWNS", "0")
        expected = _run(lambda: DeepWalk(walk_length=16),
                        medium_weighted, 0)
        _kill_worker0_after_begin_run(monkeypatch)
        engine = NextDoorEngine(workers=2, chunk_size=CHUNK)
        with pytest.warns(RuntimeWarning, match="in-process"):
            crashed = engine.run(DeepWalk(walk_length=16),
                                 medium_weighted, num_samples=256,
                                 seed=11)
        _assert_batches_equal(expected.batch, crashed.batch)
        assert expected.seconds == crashed.seconds

    def test_no_leaked_segments_after_crash(self, medium_weighted,
                                            monkeypatch):
        self.test_fallback_produces_identical_samples(medium_weighted,
                                                      monkeypatch)
        # The dead worker must not have reaped the parent's segments...
        handle = getattr(medium_weighted, "_shared_handle", None)
        assert handle is not None
        # ...and owner-side release removes every one of them.
        release_graph(medium_weighted)
        leaked = set(leaked_segments())
        assert not (set(handle.segment_names()) & leaked)

    def test_pool_respawns_for_next_run(self, medium_weighted,
                                        monkeypatch):
        self.test_fallback_produces_identical_samples(medium_weighted,
                                                      monkeypatch)
        monkeypatch.undo()
        r = _run(lambda: DeepWalk(walk_length=16), medium_weighted, 2)
        expected = _run(lambda: DeepWalk(walk_length=16),
                        medium_weighted, 0)
        _assert_batches_equal(expected.batch, r.batch)


class TestNoLeakedSegments:
    def test_normal_exit_cleans_shm(self, tmp_path):
        """A process that samples with workers and exits normally
        leaves nothing in /dev/shm (atexit owns cleanup)."""
        script = tmp_path / "child.py"
        script.write_text(
            "import numpy as np\n"
            "from repro.api.apps import DeepWalk\n"
            "from repro.core.engine import NextDoorEngine\n"
            "from repro.graph.generators import rmat_graph\n"
            "g = rmat_graph(2000, 12000, seed=11,"
            " name='medium').with_random_weights(seed=5)\n"
            "e = NextDoorEngine(workers=2, chunk_size=64)\n"
            "r = e.run(DeepWalk(walk_length=8), g, num_samples=128,"
            " seed=1)\n"
            "assert r.batch.num_samples == 128\n"
            "print('OK')\n")
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        env.pop(WORKERS_ENV, None)
        before = set(leaked_segments())  # this process's live exports
        proc = subprocess.run([sys.executable, str(script)], env=env,
                              capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout
        assert set(leaked_segments()) <= before

    def test_get_pool_reuses_and_respawns(self):
        try:
            pool = get_pool(1)
            assert get_pool(1) is pool
            pool.procs[0].terminate()
            pool.procs[0].join()
            fresh = get_pool(1)
            assert fresh is not pool
            assert fresh.healthy()
        finally:
            shutdown_pools()


# ----------------------------------------------------------------------
# Worker-count plumbing.
# ----------------------------------------------------------------------

class TestResolveWorkers:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "8")
        assert resolve_workers(2) == 2
        assert resolve_workers(0) == 0

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers(None) == 3
        monkeypatch.delenv(WORKERS_ENV)
        assert resolve_workers(None) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestDoSamplingKwargs:
    def test_unknown_kwarg_raises_typeerror(self, medium_weighted):
        with pytest.raises(TypeError, match="num_devies"):
            do_sampling(DeepWalk(walk_length=4), medium_weighted, 16,
                        num_devies=2)

    def test_known_kwargs_accepted(self, medium_weighted):
        result = do_sampling(DeepWalk(walk_length=4), medium_weighted, 16,
                             workers=0, chunk_size=128)
        assert result.batch.num_samples == 16

"""Sampling daemon (repro.serve): protocol, admission, breaker,
coalescer, cache, cancellation, client retry, and the HTTP server.

The heavyweight end-to-end scenarios (worker kill under load, breaker
ladder, drain) live in ``repro verify --suite serve``
(repro/verify/serve.py); these tests pin the component contracts.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.obs import get_metrics
from repro.runtime.cancel import CancelledRun, CancelScope, DeadlineExceeded
from repro.serve.admission import AdmissionQueue, QueueFull
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serve.cache import GraphCache, graph_content_key
from repro.serve.client import ClientResult, RetryPolicy, ServeClient
from repro.serve.coalescer import Coalescer
from repro.serve.protocol import (SampleRequest, batch_digest,
                                  decode_array, decode_arrays,
                                  encode_array, encode_batch)
from repro.serve.server import SamplingServer, ServerConfig


class TestCancelScope:
    def test_unset_scope_never_trips(self):
        scope = CancelScope()
        for i in range(100):
            scope.check(f"site {i}")
        assert not scope.cancelled
        assert scope.remaining() is None

    def test_deadline_trips_as_deadline_exceeded(self):
        scope = CancelScope(deadline=time.monotonic() - 0.001)
        assert scope.expired()
        with pytest.raises(DeadlineExceeded):
            scope.check("between chunks")

    def test_explicit_cancel(self):
        scope = CancelScope()
        scope.cancel("client went away")
        assert scope.cancelled
        with pytest.raises(CancelledRun, match="client went away"):
            scope.check("anywhere")

    def test_trip_after_checks_is_deterministic(self):
        scope = CancelScope(trip_after_checks=3)
        scope.check("one")
        scope.check("two")
        with pytest.raises(CancelledRun):
            scope.check("three")

    def test_after_constructor(self):
        scope = CancelScope.after(60.0)
        assert 59.0 < scope.remaining() <= 60.0
        assert not scope.expired()


class TestProtocol:
    def test_round_trip(self):
        req = SampleRequest(app="DeepWalk", graph="ppi", samples=64,
                            seed=3, tenant="t1", deadline_ms=500.0)
        body = json.dumps(req.to_json()).encode()
        back = SampleRequest.from_json(body)
        assert back == req

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            SampleRequest.from_json(
                json.dumps({"app": "DeepWalk", "graph": "ppi",
                            "bogus": 1}).encode())

    def test_hooks_rejected_without_opt_in(self):
        body = json.dumps({"app": "DeepWalk", "graph": "ppi",
                           "sleep_before_ms": 50}).encode()
        with pytest.raises(ValueError, match="test hook"):
            SampleRequest.from_json(body)
        req = SampleRequest.from_json(body, allow_test_hooks=True)
        assert req.hooks == {"sleep_before_ms": 50}

    def test_array_encoding_exact(self):
        arr = np.arange(12, dtype=np.int64).reshape(3, 4)
        back = decode_array(encode_array(arr))
        assert back.dtype == arr.dtype
        assert np.array_equal(back, arr)

    def test_batch_digest_matches_chaos_algorithm(self, medium_graph):
        from repro.api.apps import KHop
        from repro.core.engine import NextDoorEngine
        result = NextDoorEngine(workers=0).run(
            KHop(fanouts=(3, 2)), medium_graph, num_samples=32, seed=5)
        d1 = batch_digest(result.batch)
        again = NextDoorEngine(workers=0).run(
            KHop(fanouts=(3, 2)), medium_graph, num_samples=32, seed=5)
        assert batch_digest(again.batch) == d1
        arrays = decode_arrays(encode_batch(result))
        assert np.array_equal(arrays["roots"], result.batch.roots)


class TestAdmissionQueue:
    def test_capacity_bounds_waiting_room(self):
        q = AdmissionQueue(capacity=2, executors=1)
        q.submit("a")  # rides the idle executor
        q.submit("b")
        q.submit("c")
        with pytest.raises(QueueFull) as excinfo:
            q.submit("d")
        assert excinfo.value.retry_after_s > 0

    def test_idle_executors_admit_beyond_zero_capacity(self):
        q = AdmissionQueue(capacity=0, executors=2)
        q.submit("a")
        assert q.get(timeout=0.1) == "a"  # now 1 idle executor left
        q.submit("b")
        with pytest.raises(QueueFull):
            q.submit("c")

    def test_fifo_order(self):
        q = AdmissionQueue(capacity=8, executors=1)
        for name in ("a", "b", "c"):
            q.submit(name)
        assert [q.get(timeout=0.1) for _ in range(3)] == ["a", "b", "c"]

    def test_retry_after_scales_with_backlog(self):
        q = AdmissionQueue(capacity=100, executors=1)
        q.observe_service(2.0)
        base = q.retry_after_s()
        for i in range(4):
            q.submit(i)
        assert q.retry_after_s() > base

    def test_ewma_tracks_service_time(self):
        q = AdmissionQueue(capacity=1, executors=1)
        for _ in range(50):
            q.observe_service(1.0)
        assert q.service_estimate() == pytest.approx(1.0, rel=0.05)

    def test_close_wakes_and_refuses(self):
        q = AdmissionQueue(capacity=4, executors=1)
        q.close()
        with pytest.raises(RuntimeError, match="draining"):
            q.submit("a")
        assert q.get(timeout=0.1) is None

    def test_drained_accounting(self):
        q = AdmissionQueue(capacity=4, executors=1)
        assert q.drained()
        q.submit("a")
        assert not q.drained()
        q.get(timeout=0.1)
        assert not q.drained()  # in flight
        q.task_done()
        assert q.drained()
        assert q.wait_drained(timeout=0.1)


class TestCircuitBreaker:
    def test_closed_allows_pooled(self):
        b = CircuitBreaker(cooldown_s=10.0)
        assert b.state == CLOSED
        assert b.allow_pooled()

    def test_degraded_run_opens(self):
        b = CircuitBreaker(cooldown_s=10.0)
        b.observe(degraded=True)
        assert b.state == OPEN
        assert not b.allow_pooled()

    def test_half_open_leases_single_trial(self):
        b = CircuitBreaker(cooldown_s=0.05)
        b.observe(degraded=True)
        time.sleep(0.06)
        assert b.allow_pooled()  # the trial
        assert b.state == HALF_OPEN
        assert not b.allow_pooled()  # second caller waits
        b.observe(degraded=False)
        assert b.state == CLOSED
        assert b.allow_pooled()

    def test_failed_trial_reopens_with_fresh_cooldown(self):
        b = CircuitBreaker(cooldown_s=0.05)
        b.observe(degraded=True)
        time.sleep(0.06)
        assert b.allow_pooled()
        b.observe(degraded=True)
        assert b.state == OPEN
        assert not b.allow_pooled()  # cooldown restarted

    def test_abort_trial_releases_lease_without_closing(self):
        b = CircuitBreaker(cooldown_s=0.05)
        b.observe(degraded=True)
        time.sleep(0.06)
        assert b.allow_pooled()
        b.abort_trial()
        assert b.state == HALF_OPEN
        assert b.allow_pooled()  # lease is free again


class TestCoalescer:
    def _req(self, **kw):
        fields = dict(app="DeepWalk", graph="ppi", samples=64, seed=1)
        fields.update(kw)
        return SampleRequest(**fields)

    def test_leader_then_followers(self):
        co = Coalescer()
        key = Coalescer.signature(self._req(), "abc")
        lease, leader = co.lease(key)
        assert leader
        follower, is_leader = co.lease(key)
        assert not is_leader and follower is lease
        lease.publish({"status": "ok"})
        assert follower.wait(1.0) == {"status": "ok"}
        co.release(lease)
        _, fresh_leader = co.lease(key)
        assert fresh_leader  # not a response cache

    def test_signature_covers_bit_determining_fields(self):
        base = Coalescer.signature(self._req(), "abc")
        assert Coalescer.signature(self._req(seed=2), "abc") != base
        assert Coalescer.signature(self._req(samples=65), "abc") != base
        assert Coalescer.signature(self._req(), "other-graph") != base
        assert Coalescer.signature(self._req(), "abc",
                                   engine_config="x") != base
        # tenant does not determine bits -> identical signature
        assert Coalescer.signature(self._req(tenant="t2"), "abc") == base

    def test_hooked_requests_never_coalesce(self):
        hooked = self._req(hooks={"fault_plan": "kill-after-chunk:0.1"})
        assert Coalescer.signature(hooked, "abc") != \
            Coalescer.signature(hooked, "abc") or \
            Coalescer.signature(hooked, "abc") != \
            Coalescer.signature(self._req(), "abc")


class TestGraphCache:
    def test_dataset_hit_and_content_key(self):
        cache = GraphCache()
        g1, c1, hit1 = cache.resolve("ppi", "k-hop", seed=0)
        g2, c2, hit2 = cache.resolve("ppi", "k-hop", seed=0)
        assert not hit1 and hit2
        assert g1 is g2 and c1 == c2
        assert c1 == graph_content_key(g1)

    def test_weighted_apps_get_separate_entry(self):
        cache = GraphCache()
        unweighted, _, _ = cache.resolve("ppi", "k-hop", seed=0)
        weighted, _, _ = cache.resolve("ppi", "DeepWalk", seed=0)
        assert unweighted is not weighted
        assert cache.size() == 2

    def test_file_key_tracks_content(self, tmp_path):
        path = tmp_path / "tiny.txt"
        path.write_text("0 1\n1 2\n2 0\n")
        cache = GraphCache()
        _, _, hit = cache.resolve(str(path), "k-hop", seed=0)
        assert not hit
        _, _, hit = cache.resolve(str(path), "k-hop", seed=0)
        assert hit
        path.write_text("0 1\n1 2\n2 3\n3 0\n")  # rewritten in place
        _, _, hit = cache.resolve(str(path), "k-hop", seed=0)
        assert not hit  # stale bytes must not be served

    def test_unknown_graph_is_readable_error(self):
        with pytest.raises(ValueError, match="unknown graph"):
            GraphCache().resolve("no-such-graph", "k-hop", seed=0)


class TestRetryPolicy:
    def test_delays_bounded_and_deterministic(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.1,
                             max_delay_s=0.5, jitter=0.25, seed=7)
        d1 = list(policy.delays())
        d2 = list(policy.delays())
        assert d1 == d2  # seeded
        assert len(d1) == 4
        assert all(d <= 0.5 * 1.25 for d in d1)

    def test_different_seeds_desynchronise(self):
        a = list(RetryPolicy(seed=1).delays())
        b = list(RetryPolicy(seed=2).delays())
        assert a != b

    def test_client_result_accessors(self):
        r = ClientResult(status="ok", response={"digest": "abc"},
                         attempts=1, wall_s=0.1)
        assert r.ok and r.digest == "abc"
        r = ClientResult(status="rejected", response={}, attempts=4,
                         wall_s=0.2)
        assert not r.ok and r.digest is None


@pytest.fixture(scope="module")
def server():
    config = ServerConfig(port=0, queue_capacity=4, executors=2,
                          workers=0, allow_test_hooks=True)
    with SamplingServer(config) as srv:
        yield srv


@pytest.fixture()
def client(server):
    return ServeClient(port=server.port,
                       retry=RetryPolicy(max_attempts=1))


class TestServerHTTP:
    def test_served_bits_match_direct(self, client):
        from repro.bench.runner import paper_app, paper_graph
        from repro.core.engine import NextDoorEngine
        r = client.sample(SampleRequest(app="k-hop", graph="ppi",
                                        samples=48, seed=13))
        assert r.ok
        graph = paper_graph("ppi", "k-hop", seed=13)
        direct = NextDoorEngine(workers=0).run(
            paper_app("k-hop"), graph, num_samples=48, seed=13)
        assert r.digest == batch_digest(direct.batch)
        assert np.array_equal(r.arrays["roots"], direct.batch.roots)

    def test_no_samples_omits_arrays(self, client):
        r = client.sample(SampleRequest(app="k-hop", graph="ppi",
                                        samples=16, seed=1,
                                        return_samples=False))
        assert r.ok and r.arrays == {} and r.digest

    def test_unknown_app_is_400(self, client):
        r = client.sample(SampleRequest(app="bogus", graph="ppi"))
        assert r.status == "bad_request"
        assert "bogus" in r.response["error"]

    def test_unknown_graph_is_400(self, client):
        r = client.sample(SampleRequest(app="k-hop", graph="no-such"))
        assert r.status == "bad_request"

    def test_expired_deadline_is_504_at_enqueue(self, client):
        r = client.sample(SampleRequest(app="k-hop", graph="ppi",
                                        samples=16, deadline_ms=0.0))
        assert r.status == "deadline_exceeded"
        assert r.response["stage"] == "enqueue"

    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["executors"] == 2
        assert health["breaker"] == "closed"

    def test_metrics_endpoint_is_valid_openmetrics(self, client):
        from repro.obs.openmetrics import validate_openmetrics
        client.sample(SampleRequest(app="k-hop", graph="ppi",
                                    samples=16, seed=2))
        text = client.metrics_text()
        samples = validate_openmetrics(text)  # raises on malformed text
        assert any(name.startswith("serve_requests")
                   for name in samples)

    def test_request_counter_labels(self, server, client):
        before = get_metrics().counter(
            "serve.requests", labels={"tenant": "acme", "app": "k-hop",
                                      "status": "ok"}).value
        r = client.sample(SampleRequest(app="k-hop", graph="ppi",
                                        samples=16, seed=3,
                                        tenant="acme"))
        assert r.ok
        after = get_metrics().counter(
            "serve.requests", labels={"tenant": "acme", "app": "k-hop",
                                      "status": "ok"}).value
        assert after == before + 1

    def test_queue_full_is_429_with_retry_after(self, server, client):
        # Pin both executors, fill the 4-slot waiting room, then the
        # next request is deterministically rejected with Retry-After.
        fillers = [threading.Thread(target=client.sample, args=(
            SampleRequest(app="k-hop", graph="ppi", samples=16,
                          seed=40 + i,
                          hooks={"sleep_before_ms": 700}),))
            for i in range(6)]  # 2 executors + 4 queue slots
        for t in fillers:
            t.start()
        deadline = time.monotonic() + 5.0
        while ((server.admission.inflight() < 2
                or server.admission.depth() < 4)
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert server.admission.depth() == 4
        rejected = client.sample(SampleRequest(
            app="k-hop", graph="ppi", samples=16, seed=50))
        for t in fillers:
            t.join()
        assert rejected.status == "rejected"
        assert rejected.response["retry_after_ms"] > 0

    def test_retry_policy_eventually_succeeds(self, server):
        # A 1-deep queue with a patient client: first attempts may be
        # rejected, the retries land once the blocker finishes.
        patient = ServeClient(port=server.port,
                              retry=RetryPolicy(max_attempts=6,
                                                base_delay_s=0.1,
                                                max_delay_s=0.4))
        blocker = threading.Thread(target=patient.sample, args=(
            SampleRequest(app="k-hop", graph="ppi", samples=16,
                          seed=30, hooks={"sleep_before_ms": 400}),))
        blocker.start()
        r = patient.sample(SampleRequest(app="k-hop", graph="ppi",
                                         samples=16, seed=31))
        blocker.join()
        assert r.ok

    def test_cancel_hook_reports_midrun_stage(self, client):
        r = client.sample(SampleRequest(
            app="k-hop", graph="ppi", samples=48, seed=13,
            hooks={"cancel_after_checks": 2}))
        assert r.status == "deadline_exceeded"
        assert r.response["stage"] == "mid-run"

    def test_bad_json_is_400(self, server):
        client = ServeClient(port=server.port)
        response = client._post("/v1/sample", b"{not json")
        assert response["status"] == "bad_request"

    def test_unknown_endpoint_is_400(self, server):
        client = ServeClient(port=server.port)
        response = client._post("/v1/nope", b"{}")
        assert response["status"] == "bad_request"


class TestDrain:
    def test_drain_refuses_then_finishes(self):
        config = ServerConfig(port=0, queue_capacity=4, executors=1,
                              workers=0, allow_test_hooks=True)
        server = SamplingServer(config).start()
        client = ServeClient(port=server.port,
                             retry=RetryPolicy(max_attempts=1))
        done = []
        t = threading.Thread(target=lambda: done.append(client.sample(
            SampleRequest(app="k-hop", graph="ppi", samples=16, seed=1,
                          hooks={"sleep_before_ms": 400}))))
        t.start()
        deadline = time.monotonic() + 5.0
        while (server.admission.inflight() == 0
               and time.monotonic() < deadline):
            time.sleep(0.01)
        server.begin_drain()
        refused = client.sample(SampleRequest(app="k-hop", graph="ppi",
                                              samples=16, seed=2))
        assert refused.status == "draining"
        assert server.drain(timeout=10.0)
        t.join()
        assert done[0].status == "ok"

    def test_drain_flushes_stats(self, tmp_path):
        out = str(tmp_path / "stats.txt")
        config = ServerConfig(port=0, executors=1, workers=0,
                              stats_out=out, stats_format="openmetrics")
        server = SamplingServer(config).start()
        ServeClient(port=server.port).sample(
            SampleRequest(app="k-hop", graph="ppi", samples=16, seed=1))
        assert server.drain(timeout=5.0)
        from repro.obs.openmetrics import validate_openmetrics
        text = open(out).read()
        validate_openmetrics(text)  # raises on malformed text
        assert "serve_requests" in text

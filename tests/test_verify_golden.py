"""Golden regression snapshots: fixtures exist, match, and catch drift."""

import json
import os
import shutil

import pytest

from repro.verify import golden
from repro.verify.golden import (
    GOLDEN_CASES,
    check_case,
    compute_case,
    golden_dir,
    run_golden_checks,
)


class TestFixtures:
    def test_every_case_has_a_committed_fixture(self):
        for name in GOLDEN_CASES:
            path = os.path.join(golden_dir(), f"{name}.json")
            assert os.path.exists(path), f"missing fixture for {name}"

    def test_no_orphan_fixtures(self):
        on_disk = {f[:-len(".json")]
                   for f in os.listdir(golden_dir())
                   if f.endswith(".json")}
        assert on_disk == set(GOLDEN_CASES)

    def test_fixture_schema(self):
        path = os.path.join(golden_dir(), "deepwalk.json")
        with open(path) as f:
            fixture = json.load(f)
        assert fixture["app"] == "DeepWalk"
        assert "roots" in fixture["hashes"]
        assert fixture["charges"]["seconds"] > 0
        assert fixture["charges"]["breakdown"]


class TestCheckCase:
    def test_fast_case_passes(self):
        result = check_case("khop")
        assert result.passed, result.detail
        assert "pinned" in result.detail

    def test_compute_is_deterministic(self):
        assert compute_case("khop") == compute_case("khop")

    def test_workers_do_not_change_snapshot(self):
        # Chunked RNG plan: the pool must not perturb samples *or*
        # modeled charges.
        assert compute_case("khop") == compute_case("khop", workers=2)

    def test_missing_fixture_mentions_regen(self, tmp_path, monkeypatch):
        monkeypatch.setattr(golden, "golden_dir", lambda: str(tmp_path))
        result = check_case("khop")
        assert not result.passed
        assert "--regen" in result.detail

    def test_tampered_hash_detected(self, tmp_path, monkeypatch):
        shutil.copytree(golden_dir(), str(tmp_path), dirs_exist_ok=True)
        path = tmp_path / "khop.json"
        fixture = json.loads(path.read_text())
        fixture["hashes"]["step0"] = "0" * 32
        path.write_text(json.dumps(fixture))
        monkeypatch.setattr(golden, "golden_dir", lambda: str(tmp_path))
        result = check_case("khop")
        assert not result.passed
        assert "hash[step0] changed" in result.detail

    def test_tampered_charge_detected(self, tmp_path, monkeypatch):
        shutil.copytree(golden_dir(), str(tmp_path), dirs_exist_ok=True)
        path = tmp_path / "khop.json"
        fixture = json.loads(path.read_text())
        fixture["charges"]["seconds"] *= 1.01  # 1% drift >> CHARGE_RTOL
        path.write_text(json.dumps(fixture))
        monkeypatch.setattr(golden, "golden_dir", lambda: str(tmp_path))
        result = check_case("khop")
        assert not result.passed
        assert "seconds" in result.detail

    def test_tampered_metadata_detected(self, tmp_path, monkeypatch):
        shutil.copytree(golden_dir(), str(tmp_path), dirs_exist_ok=True)
        path = tmp_path / "khop.json"
        fixture = json.loads(path.read_text())
        fixture["steps_run"] += 1
        path.write_text(json.dumps(fixture))
        monkeypatch.setattr(golden, "golden_dir", lambda: str(tmp_path))
        result = check_case("khop")
        assert not result.passed
        assert "steps_run" in result.detail


@pytest.mark.stat
class TestFullGoldenSuite:
    def test_all_cases_pass(self):
        results = run_golden_checks()
        assert len(results) == len(GOLDEN_CASES)
        failures = [str(r) for r in results if not r.passed]
        assert not failures, "\n".join(failures)

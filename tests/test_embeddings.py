"""Skip-gram embeddings from sampled walks."""

import numpy as np
import pytest

from repro.api.apps import DeepWalk
from repro.api.types import NULL_VERTEX
from repro.train.embeddings import (
    EmbeddingConfig,
    SkipGramModel,
    train_embeddings,
    walk_pairs,
)


class TestWalkPairs:
    def test_window_one(self):
        roots = np.array([[0]])
        walks = np.array([[1, 2]])
        t, c = walk_pairs(roots, walks, window=1)
        pairs = set(zip(t.tolist(), c.tolist()))
        assert pairs == {(0, 1), (1, 0), (1, 2), (2, 1)}

    def test_window_two_adds_skips(self):
        roots = np.array([[0]])
        walks = np.array([[1, 2]])
        t, c = walk_pairs(roots, walks, window=2)
        pairs = set(zip(t.tolist(), c.tolist()))
        assert (0, 2) in pairs and (2, 0) in pairs

    def test_null_breaks_pairs(self):
        roots = np.array([[0]])
        walks = np.array([[NULL_VERTEX, 2]])
        t, c = walk_pairs(roots, walks, window=2)
        pairs = set(zip(t.tolist(), c.tolist()))
        # Nothing pairs across the NULL at position 1...
        assert (0, NULL_VERTEX) not in pairs
        assert all(NULL_VERTEX not in p for p in pairs)
        # ...but window-2 still bridges over it (0 -> 2).
        assert (0, 2) in pairs

    def test_symmetry(self):
        roots = np.array([[3], [4]])
        walks = np.array([[5, 6], [7, NULL_VERTEX]])
        t, c = walk_pairs(roots, walks, window=2)
        pairs = set(zip(t.tolist(), c.tolist()))
        assert all((b, a) in pairs for a, b in pairs)

    def test_validation(self):
        with pytest.raises(ValueError):
            walk_pairs(np.array([[0]]), np.array([[1]]), window=0)


class TestSkipGramModel:
    def test_shapes(self):
        model = SkipGramModel(10, dim=8, seed=0)
        assert model.embeddings().shape == (10, 8)

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            SkipGramModel(10, dim=0)

    def test_training_pulls_pair_together(self, rng):
        model = SkipGramModel(20, dim=8, seed=1)
        targets = np.zeros(64, dtype=np.int64)
        contexts = np.ones(64, dtype=np.int64)
        before = model.similarity(0, 1)
        for _ in range(30):
            model.train_batch(targets, contexts, rng, lr=0.2)
        assert model.similarity(0, 1) > before
        assert model.similarity(0, 1) > model.similarity(0, 15)

    def test_loss_decreases(self, rng):
        # Distinct pairs per batch: train_batch applies word2vec-style
        # summed per-pair updates, so heavy within-batch duplication of
        # one pair at high lr would overshoot (walk_pairs batches are
        # shuffled, so real corpora behave like this case).
        model = SkipGramModel(20, dim=8, seed=1)
        targets = np.arange(10, dtype=np.int64)
        contexts = (targets + 10) % 20
        losses = [model.train_batch(targets, contexts, rng, lr=0.1)
                  for _ in range(40)]
        # The negative samples are re-drawn per step, so compare
        # averaged early vs late loss rather than single steps.
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_zero_vector_similarity(self):
        model = SkipGramModel(4, dim=4)
        model.W_in[2] = 0.0
        assert model.similarity(2, 3) == 0.0


class TestEndToEnd:
    def test_edges_closer_than_random(self, medium_graph):
        """The Figure-1 property: after DeepWalk + SGNS, connected
        vertices sit closer in embedding space than random pairs."""
        config = EmbeddingConfig(dim=16, window=4, epochs=2,
                                 batch_size=8192, lr=0.08, seed=0)
        model = train_embeddings(medium_graph, DeepWalk(walk_length=15),
                                 num_walks=800, config=config)
        rng = np.random.default_rng(0)
        degrees = np.diff(medium_graph.indptr)
        src = np.repeat(np.arange(medium_graph.num_vertices), degrees)
        picks = rng.integers(0, medium_graph.num_edges, size=300)
        edge_sim = np.mean([model.similarity(int(src[i]),
                                             int(medium_graph.indices[i]))
                            for i in picks])
        u = rng.integers(0, medium_graph.num_vertices, size=300)
        v = rng.integers(0, medium_graph.num_vertices, size=300)
        rand_sim = np.mean([model.similarity(int(a), int(b))
                            for a, b in zip(u, v)])
        assert edge_sim > rand_sim + 0.05

    def test_no_pairs_raises(self, tiny_graph):
        from repro.graph.csr import CSRGraph
        # All walkers start at an isolated vertex: no pairs.
        g = CSRGraph.from_edges(3, [(0, 1)], undirected=True)
        with pytest.raises(ValueError, match="no training pairs"):
            import numpy as np
            from repro.core.engine import NextDoorEngine

            class Stuck(DeepWalk):
                def initial_roots(self, graph, num_samples, rng):
                    return np.full((num_samples, 1), 2, dtype=np.int64)

            train_embeddings(g, Stuck(walk_length=3), num_walks=4)

"""Sharded-vs-unsharded differential matrix.

For every differential app and every bitwise-tier engine (NextDoor,
SP, TP), a sharded run must produce a batch hash-for-hash identical to
the plain engine's, and its oracle charge must equal the plain
engine's modeled seconds bitwise — at every shard count and worker
count.  The full 10-app x 3-engine x shards {1,2,4} x workers {0,2}
matrix runs under ``-m slow``; a small unmarked subset rides in tier-1.
"""

import hashlib

import numpy as np
import pytest

from repro.baselines import SampleParallelEngine, VanillaTPEngine
from repro.core.engine import NextDoorEngine
from repro.dist import DistEngine
from repro.runtime.pool import shutdown_pools
from repro.verify.differential import DIFF_APPS, diff_graphs

ENGINES = {
    "NextDoor": NextDoorEngine,
    "SP": SampleParallelEngine,
    "TP": VanillaTPEngine,
}

NUM_SAMPLES = 48
CHUNK = 16
SEED = 9


def _digest(batch) -> str:
    h = hashlib.sha256()
    for arr in [batch.roots, *batch.step_vertices, *batch.edges]:
        a = np.ascontiguousarray(arr)
        h.update(str(a.shape).encode())
        h.update(a.dtype.str.encode())
        h.update(a.tobytes())
    return h.hexdigest()[:32]


@pytest.fixture(scope="module")
def parity_graph():
    return diff_graphs(seed=3)[0]


def _assert_parity(graph, app_name, engine_name, shards, workers):
    engine_cls = ENGINES[engine_name]
    app_factory = DIFF_APPS[app_name]
    base = engine_cls(workers=workers, chunk_size=CHUNK).run(
        app_factory(), graph, num_samples=NUM_SAMPLES, seed=SEED)
    dist = DistEngine(
        shards,
        base=engine_cls(workers=workers, chunk_size=CHUNK)).run(
        app_factory(), graph, num_samples=NUM_SAMPLES, seed=SEED)
    assert _digest(dist.batch) == _digest(base.batch), (
        f"{app_name}/{engine_name} diverged at shards={shards} "
        f"workers={workers}")
    assert dist.oracle_seconds == base.seconds, (
        f"{app_name}/{engine_name} oracle charge drifted at "
        f"shards={shards} workers={workers}")
    assert dist.num_shards == shards
    assert dist.steps_run == base.steps_run


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
@pytest.mark.parametrize("app_name", ["DeepWalk", "k-hop", "FastGCN"])
@pytest.mark.parametrize("shards", [2, 4])
def test_parity_quick_subset(parity_graph, app_name, engine_name,
                             shards):
    _assert_parity(parity_graph, app_name, engine_name, shards,
                   workers=0)


@pytest.mark.slow
@pytest.mark.parametrize("engine_name", sorted(ENGINES))
@pytest.mark.parametrize("app_name", sorted(DIFF_APPS))
@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize("workers", [0, 2])
def test_parity_full_matrix(parity_graph, app_name, engine_name,
                            shards, workers):
    try:
        _assert_parity(parity_graph, app_name, engine_name, shards,
                       workers)
    finally:
        if workers:
            shutdown_pools()

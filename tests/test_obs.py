"""Observability layer: tracer, metrics registry, exporters, and the
instrumentation contracts (bitwise-identical samples, cheap disabled
path, per-worker chunk lanes)."""

import io
import json
import time

import numpy as np
import pytest

from repro.api.apps import DeepWalk, KHop, LADIES
from repro.core.engine import NextDoorEngine
from repro.graph import generators
from repro.obs import (
    chrome_trace,
    format_stats,
    get_metrics,
    get_tracer,
    reset_metrics,
    stats_summary,
    trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import NullTracer, Tracer


@pytest.fixture
def tracer():
    """A fresh enabled tracer, restored to disabled afterwards."""
    t = trace.enable()
    yield t
    trace.disable()


@pytest.fixture
def graph():
    return generators.rmat_graph(num_vertices=400, num_edges=3000,
                                 seed=3, name="obs-rmat")


class TestTracer:
    def test_disabled_by_default(self):
        assert isinstance(get_tracer(), NullTracer)
        assert not trace.tracing_enabled()

    def test_null_span_records_nothing(self):
        with trace.span("x", step=1) as s:
            s.set(late=2)
        assert len(get_tracer()) == 0

    def test_enable_records_spans(self, tracer):
        with trace.span("work", step=3):
            pass
        (name, t0, t1, lane, args), = tracer.snapshot()
        assert name == "work"
        assert t1 >= t0
        assert args == {"step": 3}

    def test_span_set_merges_args(self, tracer):
        with trace.span("w", a=1) as s:
            s.set(b=2)
        assert tracer.snapshot()[0][4] == {"a": 1, "b": 2}

    def test_nested_spans_both_recorded(self, tracer):
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        names = [e[0] for e in tracer.snapshot()]
        assert names == ["inner", "outer"]  # inner closes first

    def test_add_span_uses_explicit_lane(self, tracer):
        t0 = time.monotonic()
        tracer.add_span("chunk", t0, t0 + 0.5, lane="worker-3", chunk=7)
        (_, _, _, lane, args), = tracer.snapshot()
        assert lane == "worker-3"
        assert args == {"chunk": 7}

    def test_instant_event(self, tracer):
        tracer.instant("marker", reason="x")
        (_, _, t1, _, _), = tracer.snapshot()
        assert t1 is None

    def test_clear(self, tracer):
        with trace.span("w"):
            pass
        tracer.clear()
        assert len(tracer) == 0

    def test_disabled_span_is_cheap(self):
        # The instrumentation contract: a disabled span must cost
        # roughly a function call, not a recording.  Generous bound so
        # CI noise cannot flake this.
        n = 20_000
        t0 = time.perf_counter()
        for i in range(n):
            with trace.span("probe", step=i):
                pass
        per_span = (time.perf_counter() - t0) / n
        assert per_span < 50e-6


class TestMetrics:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_gauge(self):
        g = Gauge()
        g.set(7)
        g.set(3)
        assert g.value == 3.0

    def test_histogram(self):
        h = Histogram()
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        d = h.as_dict()
        assert d["count"] == 3
        assert d["min"] == 1.0
        assert d["max"] == 3.0
        assert d["mean"] == pytest.approx(2.0)

    def test_empty_histogram_dict(self):
        assert Histogram().as_dict()["count"] == 0

    def test_registry_get_or_create(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        with pytest.raises(TypeError):
            r.gauge("a")

    def test_snapshot_flat_and_sorted(self):
        r = MetricsRegistry()
        r.counter("b").inc()
        r.histogram("a").observe(1.0)
        snap = r.snapshot()
        assert list(snap) == ["a", "b"]
        assert snap["b"] == 1.0
        assert snap["a"]["count"] == 1
        json.dumps(snap)  # must be JSON-serialisable

    def test_global_registry_reset(self):
        get_metrics().counter("test.obs_tmp").inc()
        reset_metrics()
        assert "test.obs_tmp" not in get_metrics().snapshot()


class TestExport:
    def test_chrome_trace_shape(self, tracer):
        with trace.span("run", engine="NextDoor"):
            with trace.span("step", step=0):
                pass
        tracer.add_span("chunk", time.monotonic(),
                        time.monotonic() + 0.01, lane="worker-0")
        obj = chrome_trace(tracer)
        validate_chrome_trace(obj)
        events = obj["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in xs} == {"run", "step", "chunk"}
        # lanes: main thread + worker-0, each with thread_name metadata
        labels = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert {"main", "worker-0"} <= labels
        # worker lane gets its own tid row
        tid_of = {e["args"]["name"]: e["tid"] for e in events
                  if e["ph"] == "M"}
        assert tid_of["worker-0"] != tid_of["main"]

    def test_write_chrome_trace(self, tracer, tmp_path):
        with trace.span("w"):
            pass
        path = str(tmp_path / "trace.json")
        write_chrome_trace(path, tracer)
        validate_chrome_trace(json.load(open(path)))

    def test_validate_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([1, 2, 3])
        with pytest.raises(ValueError):
            validate_chrome_trace({"no_events": True})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "name": "a", "pid": 1,
                                  "tid": 0, "ts": 0.0, "dur": -5.0}]})

    def test_stats_summary_aggregates(self, tracer):
        for _ in range(3):
            with trace.span("step"):
                pass
        summary = stats_summary(tracer=tracer)
        assert summary["spans"]["step"]["count"] == 3
        assert summary["spans"]["step"]["total_s"] >= 0
        assert "metrics" in summary
        text = format_stats(summary)
        assert "step" in text

    def test_numpy_args_exported_as_json(self, tracer):
        with trace.span("w", pairs=np.int64(7), frac=np.float64(0.5)):
            pass
        obj = chrome_trace(tracer)
        json.dumps(obj)
        ev = [e for e in obj["traceEvents"] if e["ph"] == "X"][0]
        assert ev["args"]["pairs"] == 7


class TestEngineInstrumentation:
    def test_samples_bitwise_identical_tracing_on_vs_off(self, graph):
        app = DeepWalk(walk_length=12)
        off = NextDoorEngine().run(app, graph, num_samples=128, seed=5)
        trace.enable()
        try:
            on = NextDoorEngine().run(DeepWalk(walk_length=12), graph,
                                      num_samples=128, seed=5)
        finally:
            trace.disable()
        np.testing.assert_array_equal(off.samples.as_array(),
                                      on.samples.as_array())
        assert off.seconds == on.seconds  # modeled charges untouched

    def test_samples_bitwise_identical_full_telemetry_on_vs_off(
            self, graph, tmp_path, monkeypatch):
        """PR-8 extension of the identity contract: labeled metric
        families, percentile histograms, the event log, and a live
        flight-recorder dir may all be active without moving one
        sampled vertex or one modeled charge."""
        from repro.obs import get_event_log, reset_events
        from repro.obs.events import FLIGHT_DIR_ENV
        reset_metrics()
        reset_events()
        off = NextDoorEngine(chunk_size=64).run(
            DeepWalk(walk_length=12), graph, num_samples=128, seed=5)
        monkeypatch.setenv(FLIGHT_DIR_ENV, str(tmp_path))
        reset_metrics()
        reset_events()
        trace.enable()
        try:
            on = NextDoorEngine(chunk_size=64).run(
                DeepWalk(walk_length=12), graph, num_samples=128,
                seed=5)
        finally:
            trace.disable()
        np.testing.assert_array_equal(off.samples.as_array(),
                                      on.samples.as_array())
        assert off.seconds == on.seconds  # modeled charges untouched
        # The telemetry itself really was live during the second run:
        snap = get_metrics().snapshot()
        series = snap["engine.stage_seconds"]["series"]
        sched, = [h for k, h in series.items()
                  if 'stage="scheduling_index"' in k]
        assert sched["count"] > 0 and sched["p50"] is not None
        types = [e["type"] for e in get_event_log().snapshot()]
        assert "run_start" in types
        # ...and a healthy run dumps no flight file even with the
        # recorder armed — dumps are for degradations and fault trips.
        assert not any(tmp_path.iterdir())

    def test_run_trace_has_expected_nesting(self, graph, tracer):
        NextDoorEngine().run(KHop(fanouts=(4, 3)), graph,
                             num_samples=64, seed=1)
        names = {e[0] for e in tracer.snapshot()}
        assert {"run", "step", "scheduling_index",
                "individual_kernels", "sampling.individual",
                "post_step"} <= names

    def test_collective_trace(self, graph, tracer):
        NextDoorEngine().run(LADIES(step_size=8, batch_size=8), graph,
                             num_samples=16, seed=1)
        names = {e[0] for e in tracer.snapshot()}
        assert "collective_kernels" in names
        assert "sampling.collective" in names

    def test_multi_gpu_shard_lanes(self, graph, tracer):
        NextDoorEngine().run(DeepWalk(walk_length=6), graph,
                             num_samples=64, seed=2, num_devices=2)
        # Lane labels follow OS threads — the executor may run both
        # shards on one thread — but every shard gets a span with its
        # device index, and at least one thread is named shard-*.
        labels = set(tracer.thread_names().values())
        assert any(l.startswith("shard-") for l in labels)
        shard_ids = {e[4]["shard"] for e in tracer.snapshot()
                     if e[0] == "shard"}
        assert shard_ids == {0, 1}

    def test_engine_metrics_counted(self, graph):
        reset_metrics()
        NextDoorEngine().run(DeepWalk(walk_length=6), graph,
                             num_samples=32, seed=0)
        snap = get_metrics().snapshot()
        assert snap["engine.runs"] == 1.0
        assert snap["engine.samples_produced"] == 32.0
        assert snap["engine.steps_run"] > 0
        assert snap["rng.chunk_streams"] > 0


class TestWorkerLanes:
    def test_pooled_run_records_worker_lanes(self, graph, tracer):
        reset_metrics()
        engine = NextDoorEngine(workers=2, chunk_size=64)
        result = engine.run(DeepWalk(walk_length=6), graph,
                            num_samples=256, seed=4)
        assert result.batch.num_samples == 256
        lanes = {e[3] for e in tracer.snapshot() if e[0] == "chunk"}
        workers = {l for l in lanes if isinstance(l, str)}
        assert workers, "no worker-lane chunk spans recorded"
        assert all(l.startswith("worker-") for l in workers)
        snap = get_metrics().snapshot()
        assert snap["runtime.chunks_pooled"] > 0
        # chunk latency is a labeled family: one series per app/backend
        (key, hist), = snap["pool.chunk_seconds"]["series"].items()
        assert 'app="DeepWalk"' in key
        assert 'backend=' in key
        assert hist["count"] > 0
        assert hist["p50"] is not None
        assert hist["p50"] <= hist["p99"] <= hist["max"] * 1.0001
        assert snap["pool.chunks_dispatched"] > 0

    def test_pooled_samples_match_inprocess_with_tracing(self, graph,
                                                         tracer):
        app = DeepWalk(walk_length=6)
        pooled = NextDoorEngine(workers=2, chunk_size=64).run(
            app, graph, num_samples=256, seed=4)
        serial = NextDoorEngine(workers=0, chunk_size=64).run(
            DeepWalk(walk_length=6), graph, num_samples=256, seed=4)
        np.testing.assert_array_equal(pooled.samples.as_array(),
                                      serial.samples.as_array())


class TestCliObs:
    def run_cli(self, argv):
        from repro.cli import main
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_sample_trace_and_stats(self, tmp_path):
        path = str(tmp_path / "t.json")
        code, out = self.run_cli(
            ["sample", "--app", "DeepWalk", "--graph", "ppi",
             "--samples", "32", "--trace", path, "--stats"])
        trace.disable()
        assert code == 0
        assert "wrote trace" in out
        assert "spans (wall-clock):" in out
        obj = json.load(open(path))
        validate_chrome_trace(obj)
        names = {e["name"] for e in obj["traceEvents"]}
        assert "scheduling_index" in names
        assert "run" in names

    def test_compare_prints_wallclock(self):
        code, out = self.run_cli(["compare", "--apps", "DeepWalk",
                                  "--graph", "ppi"])
        assert code == 0
        assert "measured wall-clock per engine" in out


class TestWorkerCrashDiagnostics:
    def test_crash_construction_is_side_effect_free(self):
        """Building the exception does not count as a crash: the
        ``pool.worker_crashes`` metric is recorded where a worker death
        is *detected*, not where the exception object is made."""
        from repro.runtime.pool import WorkerCrash
        reset_metrics()
        exc = WorkerCrash("worker 1 died", {0: ("x",)}, worker_index=1,
                          chunk_ids=[4, 9], elapsed=1.5)
        msg = str(exc)
        assert "worker 1" in msg
        assert "[4, 9]" in msg
        assert "1.50s" in msg
        assert exc.worker_index == 1
        assert exc.chunk_ids == (4, 9)
        assert get_metrics().snapshot().get(
            "pool.worker_crashes", 0.0) == 0.0

    def test_real_crash_records_metric_and_details(self, graph,
                                                   monkeypatch):
        # Budget 0 restores abandon-on-first-crash, so the pre-crashed
        # worker makes run_chunks raise instead of respawning.
        monkeypatch.setenv("REPRO_POOL_RESPAWNS", "0")
        from repro.runtime.pool import WorkerPool, WorkerCrash
        reset_metrics()
        pool = WorkerPool(1)
        try:
            pool.conns[0].send(("crash",))
            pool.procs[0].join(timeout=10)
            with pytest.raises(WorkerCrash) as err:
                pool.run_chunks([(0, ("ping",)), (1, ("ping",))])
            assert err.value.worker_index == 0
            assert err.value.chunk_ids  # the lost chunks are named
            assert "in flight" in str(err.value)
        finally:
            pool.shutdown()
        assert get_metrics().snapshot()["pool.worker_crashes"] >= 1.0

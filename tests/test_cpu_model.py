"""Multicore CPU cost model."""

import pytest

from repro.gpu.cpu_model import CpuDevice, CpuTask
from repro.gpu.spec import CPUSpec


class TestCpuTask:
    def test_cycles_per_unit(self):
        spec = CPUSpec()
        task = CpuTask(ops=10, random_accesses=2, sequential_bytes=128)
        expected = (10 * spec.op_cycles
                    + 2 * spec.random_access_cycles
                    + 2 * spec.sequential_line_cycles)
        assert task.cycles_per_unit(spec) == pytest.approx(expected)

    def test_empty_task(self):
        assert CpuTask().cycles_per_unit(CPUSpec()) == 0.0


class TestCpuDevice:
    def test_parallel_uses_cores(self):
        spec = CPUSpec(cores=16)
        cpu = CpuDevice(spec)
        seconds = cpu.run([CpuTask(ops=1600, count=1000)])
        serial = CpuDevice(spec).run([CpuTask(ops=1600, count=1000)],
                                     parallel=False)
        assert serial == pytest.approx(16 * seconds)

    def test_span_bound(self):
        # One enormous task cannot be split across cores.
        spec = CPUSpec(cores=16)
        cpu = CpuDevice(spec)
        seconds = cpu.run([CpuTask(ops=1e9, count=1)])
        assert seconds == pytest.approx(spec.seconds(1e9))

    def test_timeline_accumulates(self):
        cpu = CpuDevice()
        cpu.run([CpuTask(ops=100, count=10)], name="a")
        cpu.run([CpuTask(ops=100, count=10)], name="b")
        assert len(cpu.timeline.entries) == 2
        assert cpu.elapsed_seconds > 0

    def test_reset(self):
        cpu = CpuDevice()
        cpu.run([CpuTask(ops=100, count=10)])
        cpu.reset()
        assert cpu.elapsed_seconds == 0.0

    def test_random_access_dominates_ops(self):
        spec = CPUSpec()
        mem = CpuDevice(spec).run([CpuTask(random_accesses=10, count=100)])
        cmp = CpuDevice(spec).run([CpuTask(ops=10, count=100)])
        assert mem > cmp

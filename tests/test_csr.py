"""CSRGraph: storage invariants and accessors."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph


class TestConstruction:
    def test_from_edges_basic(self):
        g = CSRGraph.from_edges(3, [(0, 1), (0, 2), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert list(g.neighbors(0)) == [1, 2]
        assert list(g.neighbors(1)) == [2]
        assert list(g.neighbors(2)) == []

    def test_from_edges_undirected_doubles(self):
        g = CSRGraph.from_edges(3, [(0, 1)], undirected=True)
        assert g.num_edges == 2
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_from_edges_empty(self):
        g = CSRGraph.from_edges(4, [])
        assert g.num_vertices == 4
        assert g.num_edges == 0
        assert g.degree(2) == 0

    def test_rows_are_sorted(self):
        g = CSRGraph.from_edges(4, [(0, 3), (0, 1), (0, 2)])
        assert list(g.neighbors(0)) == [1, 2, 3]

    def test_weights_follow_row_sort(self):
        g = CSRGraph.from_edges(4, [(0, 3), (0, 1), (0, 2)],
                                weights=[3.0, 1.0, 2.0])
        assert list(g.neighbors(0)) == [1, 2, 3]
        assert list(g.edge_weights(0)) == [1.0, 2.0, 3.0]

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([1, 2]), np.array([0, 1]))

    def test_indptr_must_end_at_num_edges(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 3]), np.array([0]))

    def test_indptr_must_be_monotone(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2, 1, 3]), np.array([0, 1, 2]))

    def test_indices_in_range(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([5]))

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [(0, 1)], weights=[-1.0])

    def test_misaligned_weights_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [(0, 1)], weights=[1.0, 2.0])

    def test_out_of_range_edges_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [(0, 5)])

    def test_malformed_edges_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, np.array([[0, 1, 2]]))


class TestAccessors:
    def test_degrees_vector(self, tiny_graph):
        degs = tiny_graph.degrees()
        assert degs.shape == (7,)
        assert degs.sum() == tiny_graph.num_edges
        for v in range(7):
            assert degs[v] == tiny_graph.degree(v)

    def test_avg_degree(self, tiny_graph):
        assert tiny_graph.avg_degree == pytest.approx(
            tiny_graph.num_edges / 7)

    def test_avg_degree_empty(self):
        g = CSRGraph(np.array([0]), np.array([], dtype=np.int64))
        assert g.avg_degree == 0.0

    def test_has_edge_positive_and_negative(self, tiny_graph):
        assert tiny_graph.has_edge(0, 1)
        assert not tiny_graph.has_edge(0, 6)

    def test_has_edges_matches_scalar(self, medium_graph, rng):
        u = rng.integers(0, medium_graph.num_vertices, size=200)
        v = rng.integers(0, medium_graph.num_vertices, size=200)
        vectorised = medium_graph.has_edges(u, v)
        for i in range(200):
            assert vectorised[i] == medium_graph.has_edge(int(u[i]),
                                                          int(v[i]))

    def test_has_edges_empty(self, tiny_graph):
        out = tiny_graph.has_edges(np.array([], dtype=np.int64),
                                   np.array([], dtype=np.int64))
        assert out.shape == (0,)

    def test_has_edges_shape_mismatch(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.has_edges(np.array([0]), np.array([0, 1]))

    def test_non_isolated_vertices(self):
        g = CSRGraph.from_edges(5, [(0, 1), (1, 2)])
        assert list(g.non_isolated_vertices()) == [0, 1]

    def test_memory_bytes_counts_arrays(self, tiny_graph, tiny_weighted):
        base = tiny_graph.memory_bytes()
        assert base == (tiny_graph.indptr.nbytes
                        + tiny_graph.indices.nbytes)
        assert tiny_weighted.memory_bytes() == base + tiny_weighted.weights.nbytes

    def test_repr(self, tiny_graph):
        assert "tiny" in repr(tiny_graph)
        assert "unweighted" in repr(tiny_graph)


class TestWeights:
    def test_with_random_weights_range(self, tiny_graph):
        g = tiny_graph.with_random_weights(seed=0)
        assert g.is_weighted
        assert (g.weights >= 1.0).all() and (g.weights < 5.0).all()

    def test_with_random_weights_deterministic(self, tiny_graph):
        a = tiny_graph.with_random_weights(seed=3)
        b = tiny_graph.with_random_weights(seed=3)
        assert np.array_equal(a.weights, b.weights)

    def test_max_edge_weight(self, tiny_weighted):
        for v in range(tiny_weighted.num_vertices):
            w = tiny_weighted.edge_weights(v)
            expected = w.max() if w.size else 0.0
            assert tiny_weighted.max_edge_weight(v) == pytest.approx(expected)

    def test_weight_prefix_per_row(self, tiny_weighted):
        prefix = tiny_weighted.weight_prefix()
        for v in range(tiny_weighted.num_vertices):
            lo, hi = tiny_weighted.indptr[v], tiny_weighted.indptr[v + 1]
            row = prefix[lo:hi]
            expected = np.cumsum(tiny_weighted.weights[lo:hi])
            assert np.allclose(row, expected)

    def test_global_weight_cumsum_monotone(self, tiny_weighted):
        cumsum = tiny_weighted.global_weight_cumsum()
        assert (np.diff(cumsum) >= 0).all()
        assert cumsum[-1] == pytest.approx(tiny_weighted.weights.sum())

    def test_row_total_weight(self, tiny_weighted):
        totals = tiny_weighted.row_total_weight()
        for v in range(tiny_weighted.num_vertices):
            assert totals[v] == pytest.approx(
                tiny_weighted.edge_weights(v).sum())

    def test_unweighted_raises(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.edge_weights(0)
        with pytest.raises(ValueError):
            tiny_graph.weight_prefix()
        with pytest.raises(ValueError):
            tiny_graph.global_weight_cumsum()


class TestTransforms:
    def test_subgraph_relabels(self, tiny_graph):
        sub = tiny_graph.subgraph(np.array([0, 1, 2]))
        assert sub.num_vertices == 3
        # Edges among {0,1,2} survive with the same ids here.
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2)
        assert not sub.has_edge(0, 0)

    def test_subgraph_drops_external_edges(self, tiny_graph):
        sub = tiny_graph.subgraph(np.array([4, 5]))
        # Only (4,5) survives from {4,5}'s neighborhoods.
        assert sub.num_edges == 2  # both directions

    def test_subgraph_keeps_weights(self, tiny_weighted):
        sub = tiny_weighted.subgraph(np.array([0, 1, 2]))
        assert sub.is_weighted
        assert sub.weights.size == sub.num_edges

    def test_equality(self, tiny_graph):
        other = CSRGraph(tiny_graph.indptr.copy(),
                         tiny_graph.indices.copy())
        assert tiny_graph == other
        assert not (tiny_graph == tiny_graph.with_random_weights(seed=1))

    def test_equality_non_graph(self, tiny_graph):
        assert tiny_graph.__eq__(42) is NotImplemented

"""Suite runner: selection, reporting, and the CheckResult record."""

import pytest

from repro.verify import SUITE_NAMES, format_report, run_suites
from repro.verify.result import CheckResult


class TestSuiteSelection:
    def test_known_suite_names(self):
        assert SUITE_NAMES == ("stat", "diff", "golden", "fuzz",
                               "chaos", "native", "tune", "dist",
                               "serve")

    def test_unknown_suite_raises(self):
        with pytest.raises(ValueError, match="unknown suite"):
            run_suites(["bogus"])

    def test_golden_suite_runs(self):
        results, ok = run_suites(["golden"])
        assert ok
        assert len(results) == 10
        assert all(r.suite == "golden" for r in results)


class TestFormatReport:
    def _results(self):
        return [
            CheckResult(name="a", suite="stat", family="walk",
                        passed=True, pvalue=0.42, detail="fine"),
            CheckResult(name="b", suite="diff", family="khop",
                        passed=False, detail="step0: 3 differing entries"),
        ]

    def test_counts_and_status(self):
        report = format_report(self._results())
        assert "1/2 checks passed" in report
        assert "PASS" in report and "FAIL" in report

    def test_failure_detail_shown(self):
        report = format_report(self._results())
        assert "differing entries" in report

    def test_pvalue_rendered(self):
        assert "0.42" in format_report(self._results())

    def test_all_passing(self):
        results, _ = run_suites(["golden"])
        report = format_report(results)
        assert "10/10 checks passed" in report
        assert "FAIL" not in report

"""k-hop neighborhood sampling (GraphSAGE) and MVS."""

import numpy as np
import pytest

from repro.api.apps import KHop, MVS
from repro.api.types import NULL_VERTEX, OutputFormat
from repro.core.engine import NextDoorEngine


class TestKHop:
    def test_parameters_validate(self):
        with pytest.raises(ValueError):
            KHop(fanouts=())
        with pytest.raises(ValueError):
            KHop(fanouts=(25, 0))

    def test_output_format_per_step(self):
        assert KHop().output_format is OutputFormat.PER_STEP

    def test_step_shapes(self, medium_graph):
        result = NextDoorEngine().run(KHop((5, 3)), medium_graph,
                                      num_samples=32, seed=0)
        hops = result.get_final_samples()
        assert len(hops) == 2
        assert hops[0].shape == (32, 5)
        assert hops[1].shape == (32, 15)

    def test_paper_fanouts_default(self):
        app = KHop()
        assert app.sample_size(0) == 25
        assert app.sample_size(1) == 10

    def test_hop1_vertices_are_root_neighbors(self, medium_graph):
        result = NextDoorEngine().run(KHop((5, 3)), medium_graph,
                                      num_samples=32, seed=0)
        hop1 = result.get_final_samples()[0]
        roots = result.batch.roots[:, 0]
        for s in range(32):
            nbrs = set(medium_graph.neighbors(int(roots[s])).tolist())
            for v in hop1[s]:
                if v != NULL_VERTEX:
                    assert int(v) in nbrs

    def test_hop2_vertices_are_hop1_neighbors(self, medium_graph):
        result = NextDoorEngine().run(KHop((5, 3)), medium_graph,
                                      num_samples=16, seed=0)
        hop1, hop2 = result.get_final_samples()
        for s in range(16):
            for t_idx in range(5):
                t = hop1[s, t_idx]
                block = hop2[s, t_idx * 3:(t_idx + 1) * 3]
                if t == NULL_VERTEX:
                    assert (block == NULL_VERTEX).all()
                    continue
                nbrs = set(medium_graph.neighbors(int(t)).tolist())
                for v in block:
                    if v != NULL_VERTEX:
                        assert int(v) in nbrs

    def test_unique_flag_dedups_per_sample(self, star_graph):
        # Every hop-1 vertex of the star's center is one of 32 leaves;
        # with fanout 16 and unique=True no sample repeats a vertex.
        result = NextDoorEngine().run(
            KHop((16,), unique_per_step=True), star_graph,
            roots=np.zeros((8, 1), dtype=np.int64), seed=0)
        hop = result.get_final_samples()[0]
        for row in hop:
            live = row[row != NULL_VERTEX]
            assert np.unique(live).size == live.size

    def test_uniform_coverage(self, star_graph, rng):
        app = KHop((8,))
        transits = np.zeros(4000, dtype=np.int64)
        out, _ = app.sample_neighbors(star_graph, transits, 0, rng)
        counts = np.bincount(out.ravel(), minlength=33)[1:]
        assert counts.min() > 0.5 * counts.mean()


class TestMVS:
    def test_parameters_validate(self):
        with pytest.raises(ValueError):
            MVS(batch_size=0)

    def test_batch_roots(self, medium_graph):
        result = NextDoorEngine().run(MVS(batch_size=16), medium_graph,
                                      num_samples=8, seed=0)
        assert result.batch.roots.shape == (8, 16)

    def test_single_step(self, medium_graph):
        result = NextDoorEngine().run(MVS(batch_size=16), medium_graph,
                                      num_samples=8, seed=0)
        assert result.steps_run == 1
        assert len(result.get_final_samples()) == 1

    def test_one_hop_validity(self, medium_graph):
        result = NextDoorEngine().run(MVS(batch_size=8), medium_graph,
                                      num_samples=8, seed=0)
        hop = result.get_final_samples()[0]
        roots = result.batch.roots
        for s in range(8):
            for j in range(8):
                v = hop[s, j]
                if v != NULL_VERTEX:
                    assert medium_graph.has_edge(int(roots[s, j]), int(v))

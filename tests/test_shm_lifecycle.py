"""Shared-memory lifecycle on hard exits (repro.runtime.shm).

Owner-side atexit cleanup covers normal exits (tested in
test_runtime).  These tests cover the ways a process dies *without*
atexit: SIGKILL leaves orphans that the next pool startup's stale
sweep reaps (and only those — live owners are untouchable), and
SIGTERM is caught so a polite kill cleans up inline.
"""

import os
import signal
import subprocess
import sys
import time

from multiprocessing import shared_memory

from repro.graph.generators import rmat_graph
from repro.obs import get_metrics
from repro.runtime.pool import WorkerPool
from repro.runtime.shm import (
    SEGMENT_PREFIX,
    export_graph,
    leaked_segments,
    release_graph,
    sweep_stale_segments,
)

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))

_CHILD = """\
import time
from repro.graph.generators import rmat_graph
from repro.runtime.shm import export_graph
g = rmat_graph(200, 800, seed=1, name='lifecycle')
h = export_graph(g)
print(",".join(h.segment_names()), flush=True)
time.sleep(120)
"""


def _spawn_exporter(tmp_path):
    """Start a child that exports a graph and then sleeps; returns
    (proc, its segment names)."""
    script = tmp_path / "exporter.py"
    script.write_text(_CHILD)
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    proc = subprocess.Popen([sys.executable, str(script)], env=env,
                            stdout=subprocess.PIPE, text=True)
    line = proc.stdout.readline().strip()
    assert line, "exporter child produced no segments"
    return proc, line.split(",")


def _wait_gone(names, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not (set(names) & set(leaked_segments())):
            return True
        time.sleep(0.1)
    return False


class TestStaleSweep:
    def test_sigkilled_owner_segments_are_swept(self, tmp_path):
        proc, names = _spawn_exporter(tmp_path)
        proc.kill()  # SIGKILL: no atexit, no signal handler
        proc.wait(timeout=30)
        assert set(names) <= set(leaked_segments()), \
            "SIGKILL should have orphaned the segments"
        swept_metric = get_metrics().counter("shm.segments_swept")
        before = swept_metric.value
        swept = sweep_stale_segments()
        assert swept >= len(names)
        assert not (set(names) & set(leaked_segments()))
        assert swept_metric.value - before >= len(names)

    def test_pool_startup_sweeps(self, tmp_path):
        proc, names = _spawn_exporter(tmp_path)
        proc.kill()
        proc.wait(timeout=30)
        pool = WorkerPool(1)
        try:
            assert not (set(names) & set(leaked_segments()))
        finally:
            pool.shutdown()

    def test_live_owner_is_never_swept(self, tmp_path, medium_graph):
        handle = export_graph(medium_graph)
        own = set(handle.segment_names())
        try:
            proc, names = _spawn_exporter(tmp_path)
            try:
                sweep_stale_segments()
                # Both the child (alive) and this process keep theirs.
                assert set(names) <= set(leaked_segments())
                assert own <= set(leaked_segments())
            finally:
                proc.kill()
                proc.wait(timeout=30)
                sweep_stale_segments()
        finally:
            release_graph(medium_graph)

    def test_unparseable_names_are_left_alone(self):
        seg = shared_memory.SharedMemory(
            create=True, size=16, name=f"{SEGMENT_PREFIX}_legacy_x")
        try:
            sweep_stale_segments()
            assert seg.name.lstrip("/") in leaked_segments()
        finally:
            seg.close()
            seg.unlink()


class TestSigtermCleanup:
    def test_sigtermed_owner_leaves_no_segments(self, tmp_path):
        proc, names = _spawn_exporter(tmp_path)
        proc.terminate()  # SIGTERM: the export-time handler cleans up
        proc.wait(timeout=30)
        assert _wait_gone(names), \
            f"SIGTERM left segments behind: {names}"
        # The handler re-raises, so the exit status still says SIGTERM.
        assert proc.returncode == -signal.SIGTERM

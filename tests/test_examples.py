"""Smoke tests: the fast examples must run end to end.

(The two slower demos — compare_engines and large_graph_multi_gpu —
are exercised manually / by CI at longer timeouts; their building
blocks are covered by the benchmark suite.)
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name: str, timeout: int = 300) -> str:
    path = os.path.join(EXAMPLES_DIR, name)
    result = subprocess.run([sys.executable, path], capture_output=True,
                            text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "DeepWalk" in out
        assert "store efficiency" in out
        assert "k-hop" in out

    def test_custom_sampler(self):
        out = run_example("custom_sampler.py")
        assert "contract checks passed" in out
        assert "burn_prob=0.9" in out

    def test_gnn_training(self):
        out = run_example("gnn_training.py")
        assert "epoch 0" in out
        assert "OOM" in out  # the ClusterGCN/Orkut cell

    def test_walk_embeddings(self):
        out = run_example("walk_embeddings.py")
        assert "separation" in out

    def test_full_pipeline(self):
        out = run_example("full_pipeline.py", timeout=420)
        assert "store efficiency" in out
        assert "epoch 2" in out

    def test_examples_exist(self):
        expected = {"quickstart.py", "custom_sampler.py",
                    "gnn_training.py", "walk_embeddings.py",
                    "full_pipeline.py", "compare_engines.py",
                    "large_graph_multi_gpu.py"}
        present = set(os.listdir(EXAMPLES_DIR))
        assert expected <= present

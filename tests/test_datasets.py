"""Dataset registry: calibration of the Table 3 stand-ins."""

import pytest

from repro.graph import datasets


class TestRegistry:
    def test_names_cover_table3(self):
        names = datasets.names()
        for key in ("ppi", "orkut", "patents", "livej", "friendster"):
            assert key in names

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            datasets.load("imaginary")

    def test_friendster_flagged_out_of_memory(self):
        assert not datasets.SPECS["friendster"].fits_in_gpu
        assert datasets.SPECS["orkut"].fits_in_gpu

    def test_scaled_memory_bytes_paper_scale(self):
        friends = datasets.scaled_memory_bytes("friendster")
        assert friends > 14e9  # 1.8B edges x 8B: exceeds a 16GB V100
        assert datasets.scaled_memory_bytes("ppi") < 1e9


class TestLoad:
    def test_caching_returns_same_object(self):
        a = datasets.load("ppi", seed=0)
        b = datasets.load("ppi", seed=0)
        assert a is b

    def test_seed_changes_graph(self):
        a = datasets.load("ppi", seed=0)
        b = datasets.load("ppi", seed=42)
        assert a is not b
        assert not (a == b)

    def test_weighted_variant(self):
        g = datasets.load("ppi", seed=0, weighted=True)
        assert g.is_weighted
        assert (g.weights >= 1.0).all() and (g.weights < 5.0).all()

    def test_avg_degree_matches_paper(self):
        for name in ("ppi", "orkut", "patents", "livej"):
            g = datasets.load(name, seed=0)
            spec = datasets.SPECS[name]
            assert g.avg_degree == pytest.approx(spec.avg_degree, rel=0.45), name

    def test_relative_ordering_preserved(self):
        sizes = {name: datasets.load(name, seed=0).num_vertices
                 for name in ("ppi", "orkut", "livej", "friendster")}
        assert sizes["ppi"] <= sizes["orkut"] <= sizes["livej"] \
            <= sizes["friendster"]

    def test_node_floor(self):
        assert datasets.load("ppi", seed=0).num_vertices >= 4000

    def test_scale_override(self):
        g = datasets.load("orkut", seed=0, scale=600)
        assert g.num_vertices == 3_000_000 // 600


class TestRows:
    def test_paper_row(self):
        row = datasets.paper_row("orkut")
        assert row["nodes"] == 3_000_000
        assert row["avg_degree"] == 39.0

    def test_measured_row(self):
        row = datasets.measured_row("ppi", seed=0)
        assert row["nodes"] >= 4000
        assert row["max_degree"] > row["avg_degree"]

    def test_load_clustered(self):
        g = datasets.load_clustered("ppi", num_clusters=8, seed=0)
        assert g.num_vertices == datasets.SPECS["ppi"].nodes

"""Training substrate: layers, model, trainer, epoch cost model."""

import numpy as np
import pytest

from repro.api.types import NULL_VERTEX
from repro.train.epoch_model import EpochCostModel, GNN_CONFIGS
from repro.train.layers import (
    Dense,
    mean_aggregate,
    relu,
    relu_grad,
    softmax_cross_entropy,
)
from repro.train.models import GraphSAGEModel
from repro.train.trainer import (
    TrainConfig,
    Trainer,
    synthetic_features_and_labels,
)


class TestLayers:
    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0])
        assert list(relu(x)) == [0.0, 0.0, 2.0]
        assert list(relu_grad(x)) == [0.0, 0.0, 1.0]

    def test_dense_shapes(self, rng):
        layer = Dense(4, 3, rng)
        out = layer.forward(np.ones((8, 4)))
        assert out.shape == (8, 3)
        grad_in = layer.backward(np.ones((8, 3)), lr=0.0)
        assert grad_in.shape == (8, 4)

    def test_dense_sgd_reduces_loss(self, rng):
        layer = Dense(4, 2, rng)
        x = rng.normal(size=(64, 4))
        target = np.zeros((64, 2))
        for _ in range(50):
            out = layer.forward(x)
            layer.backward(out - target, lr=0.1)
        assert np.abs(layer.forward(x)).mean() < 0.2

    def test_softmax_cross_entropy_gradient(self, rng):
        """Analytic gradient matches a finite-difference check."""
        logits = rng.normal(size=(3, 4))
        labels = np.array([0, 2, 1])
        loss, grad = softmax_cross_entropy(logits, labels)
        eps = 1e-5
        for i in range(3):
            for j in range(4):
                bumped = logits.copy()
                bumped[i, j] += eps
                loss2, _ = softmax_cross_entropy(bumped, labels)
                numeric = (loss2 - loss) / eps
                assert numeric == pytest.approx(grad[i, j], abs=1e-3)

    def test_softmax_loss_positive(self, rng):
        logits = rng.normal(size=(5, 3))
        loss, _ = softmax_cross_entropy(logits, np.zeros(5, dtype=int))
        assert loss > 0

    def test_mean_aggregate(self):
        feats = np.array([[1.0], [3.0], [5.0]])
        ids = np.array([[0, 1], [2, NULL_VERTEX]])
        out = mean_aggregate(feats, ids, NULL_VERTEX)
        assert out[0, 0] == pytest.approx(2.0)
        assert out[1, 0] == pytest.approx(5.0)

    def test_mean_aggregate_all_null(self):
        feats = np.ones((3, 2))
        ids = np.full((1, 4), NULL_VERTEX)
        out = mean_aggregate(feats, ids, NULL_VERTEX)
        assert (out == 0).all()


class TestModel:
    def test_forward_shapes(self, rng):
        model = GraphSAGEModel(8, 16, 3, seed=0)
        feats = rng.normal(size=(100, 8))
        roots = np.arange(10)
        hops = [rng.integers(0, 100, size=(10, 5)),
                rng.integers(0, 100, size=(10, 15))]
        logits = model.forward(roots, hops, feats)
        assert logits.shape == (10, 3)

    def test_train_step_reduces_loss(self, rng):
        model = GraphSAGEModel(8, 16, 3, seed=0)
        feats = rng.normal(size=(100, 8))
        labels = rng.integers(0, 3, size=100)
        feats[np.arange(100), labels] += 4.0  # separable signal
        roots = np.arange(64)
        hops = [rng.integers(0, 100, size=(64, 5))]
        first = model.train_step(roots, hops, feats, labels, lr=0.5)
        for _ in range(60):
            last = model.train_step(roots, hops, feats, labels, lr=0.5)
        assert last < first

    def test_accuracy_and_predict(self, rng):
        model = GraphSAGEModel(4, 8, 2, seed=0)
        feats = rng.normal(size=(20, 4))
        labels = rng.integers(0, 2, size=20)
        roots = np.arange(20)
        hops = [rng.integers(0, 20, size=(20, 3))]
        acc = model.accuracy(roots, hops, feats, labels)
        assert 0.0 <= acc <= 1.0

    def test_flops_positive(self):
        model = GraphSAGEModel(8, 16, 3)
        assert model.flops_per_batch(64) > 0
        assert model.num_params > 0


class TestTrainer:
    def test_synthetic_data_learnable_shape(self, medium_graph):
        feats, labels = synthetic_features_and_labels(medium_graph, 16, 4,
                                                      seed=0)
        assert feats.shape == (medium_graph.num_vertices, 16)
        assert set(np.unique(labels)) <= set(range(4))

    def test_training_beats_chance(self, medium_graph):
        cfg = TrainConfig(batch_size=256, epochs=8, hidden_dim=32,
                          feature_dim=16, num_classes=4,
                          fanouts=(5, 3), lr=0.5, seed=0)
        trainer = Trainer(medium_graph, cfg)
        history = trainer.train()
        assert history[-1].accuracy > 0.4  # chance is 0.25
        assert history[-1].accuracy >= history[0].accuracy - 0.05

    def test_epoch_stats_recorded(self, medium_graph):
        cfg = TrainConfig(batch_size=512, epochs=1, fanouts=(4, 2),
                          feature_dim=8, hidden_dim=16)
        trainer = Trainer(medium_graph, cfg)
        stats = trainer.run_epoch(0)
        assert stats.num_batches >= 1
        assert stats.sampling_seconds_modeled > 0
        assert np.isfinite(stats.loss)


class TestEpochCostModel:
    def test_fractions_in_unit_interval(self):
        model = EpochCostModel()
        for gnn in GNN_CONFIGS:
            for d in ("ppi", "orkut", "livej"):
                frac = model.sampling_fraction(gnn, d)
                assert 0.0 < frac < 1.0, (gnn, d)

    def test_nextdoor_epoch_never_slower(self):
        model = EpochCostModel()
        for gnn in ("FastGCN", "LADIES", "ClusterGCN"):
            for d in ("reddit", "orkut", "patents", "livej"):
                if model.out_of_memory(gnn, d):
                    continue
                assert model.end_to_end_speedup(gnn, d) > 0.95, (gnn, d)

    def test_speedup_grows_with_scale_for_importance_samplers(self):
        model = EpochCostModel()
        for gnn in ("FastGCN", "LADIES"):
            assert (model.end_to_end_speedup(gnn, "orkut")
                    > model.end_to_end_speedup(gnn, "ppi"))

    def test_only_clustergcn_orkut_ooms(self):
        model = EpochCostModel()
        assert model.out_of_memory("ClusterGCN", "orkut")
        assert not model.out_of_memory("ClusterGCN", "livej")
        assert not model.out_of_memory("FastGCN", "orkut")
        assert not model.out_of_memory("GraphSAGE", "orkut")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            EpochCostModel().epoch("FastGCN", "ppi", backend="magic")

    def test_graphsage_copy_penalty(self):
        model = EpochCostModel()
        costs = model.epoch("GraphSAGE", "livej", "nextdoor")
        assert costs.copy_seconds > 0
        fastgcn = model.epoch("FastGCN", "livej", "nextdoor")
        assert fastgcn.copy_seconds == 0.0

"""RWR and MHRW: the extension walks built on the paper's API."""

import numpy as np
import pytest

from repro.api.apps import MHRW, RWR, DeepWalk
from repro.api.types import NULL_VERTEX
from repro.core.engine import NextDoorEngine


class TestRWR:
    def test_validation(self):
        with pytest.raises(ValueError):
            RWR(restart_prob=1.0)
        with pytest.raises(ValueError):
            RWR(restart_prob=-0.1)

    def test_restart_rate_matches(self, medium_graph):
        result = NextDoorEngine().run(RWR(restart_prob=0.3,
                                          walk_length=40),
                                      medium_graph, num_samples=400,
                                      seed=0)
        walks = result.get_final_samples()
        roots = result.batch.roots[:, 0]
        revisit = (walks == roots[:, None]).mean()
        assert 0.25 < revisit < 0.4

    def test_zero_restart_is_plain_walk(self, medium_graph):
        rwr = NextDoorEngine().run(RWR(restart_prob=0.0, walk_length=10),
                                   medium_graph, num_samples=64, seed=3)
        walk = NextDoorEngine().run(DeepWalk(walk_length=10),
                                    medium_graph, num_samples=64, seed=3)
        assert np.array_equal(rwr.batch.roots, walk.batch.roots)

    def test_steps_are_edges_or_restarts(self, medium_graph):
        result = NextDoorEngine().run(RWR(restart_prob=0.2,
                                          walk_length=20),
                                      medium_graph, num_samples=64,
                                      seed=0)
        walks = result.get_final_samples()
        roots = result.batch.roots[:, 0]
        full = np.concatenate([roots[:, None], walks], axis=1)
        for s in range(64):
            for j in range(1, full.shape[1]):
                v, prev = full[s, j], full[s, j - 1]
                if v == NULL_VERTEX or prev == NULL_VERTEX:
                    continue
                assert (v == roots[s]
                        or medium_graph.has_edge(int(prev), int(v)))

    def test_walks_never_die(self, medium_graph):
        """Restarting on dead ends keeps every walk alive to the end."""
        result = NextDoorEngine().run(RWR(restart_prob=0.1,
                                          walk_length=30),
                                      medium_graph, num_samples=128,
                                      seed=0)
        walks = result.get_final_samples()
        assert (walks[:, -1] != NULL_VERTEX).all()


class TestMHRW:
    def test_validation(self):
        with pytest.raises(ValueError):
            MHRW(walk_length=0)

    def test_transitions_are_edges_or_self(self, medium_graph):
        result = NextDoorEngine().run(MHRW(walk_length=15), medium_graph,
                                      num_samples=64, seed=0)
        walks = result.get_final_samples()
        roots = result.batch.roots[:, 0]
        full = np.concatenate([roots[:, None], walks], axis=1)
        for s in range(64):
            for j in range(1, full.shape[1]):
                v, prev = full[s, j], full[s, j - 1]
                if v == NULL_VERTEX or prev == NULL_VERTEX:
                    continue
                assert (v == prev
                        or medium_graph.has_edge(int(prev), int(v)))

    def test_corrects_degree_bias(self, medium_graph):
        """A plain walk's position distribution is proportional to
        degree; MHRW's is uniform.  After mixing, MHRW positions must
        sit at markedly lower average degree."""
        plain = NextDoorEngine().run(DeepWalk(walk_length=60),
                                     medium_graph,
                                     num_samples=1500, seed=0)
        mh = NextDoorEngine().run(MHRW(walk_length=60), medium_graph,
                                  num_samples=1500, seed=0)
        degs = medium_graph.degrees()

        def mean_final_degree(result):
            final = result.get_final_samples()[:, -1]
            final = final[final != NULL_VERTEX]
            return degs[final].mean()

        assert mean_final_degree(mh) < 0.6 * mean_final_degree(plain)

    def test_rejections_self_loop(self, star_graph):
        """From a leaf (degree 1) to the hub (degree 32), the MH
        acceptance is 1/32: most steps stay at the leaf."""
        result = NextDoorEngine().run(
            MHRW(walk_length=1), star_graph,
            roots=np.full((2000, 1), 1, dtype=np.int64), seed=0)
        first = result.get_final_samples()[:, 0]
        stayed = (first == 1).mean()
        assert stayed > 0.9


class TestWeightedNode2Vec:
    def test_weight_bias_applied(self, rng):
        """With neutral p=q=1, weighted node2vec reduces to the
        weight-biased walk: a 9:1 edge pair splits ~90/10."""
        from repro.api.apps import Node2Vec
        from repro.graph.csr import CSRGraph
        g = CSRGraph.from_edges(3, [(0, 1), (0, 2), (1, 0), (2, 0)],
                                weights=[9.0, 1.0, 1.0, 1.0])
        app = Node2Vec(p=1.0, q=1.0)
        transits = np.zeros(4000, dtype=np.int64)
        out, _ = app.sample_neighbors(g, transits, 0, rng,
                                      prev_transits=None)
        frac = (out[:, 0] == 1).mean()
        assert 0.8 < frac < 0.97

    def test_reference_weighted_agrees(self, rng):
        from repro.api.app import SamplingApp
        from repro.api.apps import Node2Vec
        from repro.api.sample import SampleBatch
        from repro.graph.csr import CSRGraph
        g = CSRGraph.from_edges(3, [(0, 1), (0, 2), (1, 0), (2, 0)],
                                weights=[4.0, 1.0, 1.0, 1.0])
        app = Node2Vec(p=1.0, q=1.0)
        transits = np.zeros(3000, dtype=np.int64)
        batch = SampleBatch(g, np.zeros((3000, 1), np.int64))
        ref, _ = SamplingApp.sample_neighbors(
            app, g, transits, 0, rng, batch=batch,
            sample_ids=np.arange(3000))
        fast, _ = app.sample_neighbors(g, transits, 0, rng)
        assert abs((ref == 1).mean() - (fast == 1).mean()) < 0.06


class TestRowMaxWeight:
    def test_matches_scalar(self, medium_weighted):
        row_max = medium_weighted.row_max_weight()
        for v in range(0, medium_weighted.num_vertices, 97):
            assert row_max[v] == pytest.approx(
                medium_weighted.max_edge_weight(v))

    def test_empty_rows_zero(self):
        from repro.graph.csr import CSRGraph
        g = CSRGraph.from_edges(4, [(0, 1)], weights=[2.0])
        row_max = g.row_max_weight()
        assert row_max[0] == 2.0
        assert row_max[2] == 0.0

    def test_unweighted_raises(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.row_max_weight()

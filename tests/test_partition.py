"""Graph partitioning: cluster and memory-budget splits."""

import numpy as np
import pytest

from repro.graph.partition import (
    Partition,
    bfs_partition,
    partition_for_memory,
    partition_vertices,
    random_partition,
)


class TestPartitionType:
    def test_members_and_sizes(self, tiny_graph):
        p = random_partition(tiny_graph, 3, seed=0)
        assert p.sizes().sum() == tiny_graph.num_vertices
        covered = np.concatenate([p.members(i) for i in range(3)])
        assert sorted(covered.tolist()) == list(range(7))

    def test_validation_assignment_size(self, tiny_graph):
        with pytest.raises(ValueError):
            Partition(tiny_graph, np.zeros(3, dtype=np.int64), 2)

    def test_validation_assignment_range(self, tiny_graph):
        bad = np.zeros(7, dtype=np.int64)
        bad[0] = 5
        with pytest.raises(ValueError):
            Partition(tiny_graph, bad, 2)

    def test_edge_cut_extremes(self, tiny_graph):
        one = Partition(tiny_graph, np.zeros(7, dtype=np.int64), 1)
        assert one.edge_cut() == 0
        each = Partition(tiny_graph, np.arange(7), 7)
        assert each.edge_cut() == tiny_graph.num_edges

    def test_part_bytes(self, tiny_graph):
        p = Partition(tiny_graph, np.zeros(7, dtype=np.int64), 1)
        assert p.part_bytes(0) == tiny_graph.num_edges * 8 + 8 * 8


class TestRandomPartition:
    def test_deterministic(self, medium_graph):
        a = random_partition(medium_graph, 8, seed=1)
        b = random_partition(medium_graph, 8, seed=1)
        assert np.array_equal(a.assignment, b.assignment)

    def test_roughly_balanced(self, medium_graph):
        p = random_partition(medium_graph, 8, seed=1)
        sizes = p.sizes()
        assert sizes.min() > 0.6 * sizes.mean()

    def test_validation(self, tiny_graph):
        with pytest.raises(ValueError):
            random_partition(tiny_graph, 0)


class TestBFSPartition:
    def test_covers_everything(self, medium_graph):
        p = bfs_partition(medium_graph, 6, seed=2)
        assert (p.assignment >= 0).all()
        assert p.sizes().sum() == medium_graph.num_vertices

    def test_locality_beats_random(self, medium_graph):
        bfs = bfs_partition(medium_graph, 6, seed=2)
        rnd = random_partition(medium_graph, 6, seed=2)
        assert bfs.edge_cut() < rnd.edge_cut()

    def test_validation(self, tiny_graph):
        with pytest.raises(ValueError):
            bfs_partition(tiny_graph, 0)


def _assert_disjoint_and_complete(p, num_vertices):
    members = [p.members(i) for i in range(p.num_parts)]
    covered = (np.concatenate(members) if members
               else np.zeros(0, np.int64))
    # Disjoint: no vertex in two parts. Complete: every vertex in one.
    assert sorted(covered.tolist()) == list(range(num_vertices))


class TestIsolatedVertices:
    @pytest.fixture()
    def isolated_graph(self):
        # 8 vertices, edges only among 0-3; 4-7 are isolated and
        # unreachable from any BFS seed's frontier.
        from repro.graph.csr import CSRGraph
        return CSRGraph.from_edges(
            8, [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)])

    def test_bfs_covers_isolated_vertices(self, isolated_graph):
        p = bfs_partition(isolated_graph, 3, seed=0)
        _assert_disjoint_and_complete(p, 8)

    def test_random_covers_isolated_vertices(self, isolated_graph):
        p = random_partition(isolated_graph, 3, seed=0)
        _assert_disjoint_and_complete(p, 8)

    def test_bfs_more_parts_than_vertices(self, isolated_graph):
        # Regression: surplus seedless parts used to index past the
        # frontier list when num_parts > num_vertices.
        p = bfs_partition(isolated_graph, 12, seed=0)
        _assert_disjoint_and_complete(p, 8)
        assert p.num_parts == 12
        assert (p.sizes() >= 0).all()

    def test_bfs_single_vertex_many_parts(self):
        from repro.graph.csr import CSRGraph
        g = CSRGraph.from_edges(1, [])
        p = bfs_partition(g, 4, seed=1)
        _assert_disjoint_and_complete(p, 1)


class TestMemoryPartition:
    def test_every_part_fits_budget(self, medium_graph):
        budget = 16 * 1024
        p = partition_for_memory(medium_graph, budget)
        for part in range(p.num_parts):
            assert p.part_bytes(part) <= budget + 64

    def test_parts_are_contiguous_ranges(self, medium_graph):
        p = partition_for_memory(medium_graph, 16 * 1024)
        assert (np.diff(p.assignment) >= 0).all()

    def test_single_part_when_budget_huge(self, tiny_graph):
        p = partition_for_memory(tiny_graph, 10 ** 9)
        assert p.num_parts == 1

    def test_too_small_budget_rejected(self, star_graph):
        with pytest.raises(ValueError):
            partition_for_memory(star_graph, 64)

    def test_trivial_budget_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            partition_for_memory(tiny_graph, 8)


class TestPartitionVertices:
    def test_even_split(self):
        chunks = partition_vertices(10, 3)
        assert len(chunks) == 3
        assert sum(c.size for c in chunks) == 10
        assert np.array_equal(np.concatenate(chunks), np.arange(10))

    def test_more_parts_than_vertices(self):
        chunks = partition_vertices(2, 4)
        assert sum(c.size for c in chunks) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_vertices(10, 0)
